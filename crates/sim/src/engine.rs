//! The discrete-event simulation engine.
//!
//! [`Sim`] is a cheaply cloneable handle to a single-threaded event queue.
//! Components capture a `Sim` clone (or receive `&Sim` in their event
//! callbacks) and schedule closures at future virtual instants. Events at
//! the same instant fire in scheduling order, which — together with the
//! seeded [`SimRng`] — makes every run bit-for-bit reproducible.
//!
//! # Cancellation
//!
//! Event and timer ids are generation-stamped slot references: the low
//! 32 bits index a slot, the high 32 bits carry the slot's generation at
//! scheduling time. Cancelling compares generations and flips a flag —
//! O(1), no tombstone set to grow without bound — and a slot is recycled
//! the moment its heap entry pops (whether it fired or was cancelled), so
//! memory stays proportional to the number of *outstanding* events, not
//! the number ever scheduled. A stale id (fired or cancelled) simply
//! mismatches its slot's generation and is ignored.

use std::cell::RefCell;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use crate::intern::MetricKey;
use crate::obs::MetricsRegistry;
use crate::prof::{Phase, ProfTrack, Profiler};
use crate::reqtrace::{ReqStamp, RequestTracer};
use crate::rng::SimRng;
use crate::span::{SpanId, SpanTracer};
use crate::time::SimTime;
use crate::trace::{Trace, TraceLevel};

/// Identifier of a scheduled (cancellable) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Identifier of a periodic timer created by [`Sim::every`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

fn pack(slot: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | u64::from(slot)
}

fn unpack(id: u64) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// One reusable id slot: the current generation plus whether the
/// generation's id is still live (scheduled and not cancelled).
#[derive(Debug, Clone, Copy)]
struct IdSlot {
    gen: u32,
    live: bool,
}

/// A generation-stamped slot arena. Allocation pops the free list (or
/// grows), cancellation flips `live`, and freeing bumps the generation so
/// every previously handed-out id for the slot goes stale.
#[derive(Debug, Default)]
struct SlotArena {
    slots: Vec<IdSlot>,
    free: Vec<u32>,
}

impl SlotArena {
    fn alloc(&mut self) -> (u32, u32) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(IdSlot {
                gen: 0,
                live: false,
            });
            (self.slots.len() - 1) as u32
        });
        let s = &mut self.slots[slot as usize];
        s.live = true;
        (slot, s.gen)
    }

    fn is_live(&self, id: u64) -> bool {
        let (slot, gen) = unpack(id);
        self.slots
            .get(slot as usize)
            .is_some_and(|s| s.gen == gen && s.live)
    }

    /// Marks a live id cancelled. Returns `true` only on the first
    /// cancellation of a still-pending id.
    fn cancel(&mut self, id: u64) -> bool {
        let (slot, gen) = unpack(id);
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.gen == gen && s.live => {
                s.live = false;
                true
            }
            _ => false,
        }
    }

    /// Retires a slot once its owner is done with it: bumps the generation
    /// (staling every outstanding id) and returns it to the free list.
    /// Returns whether the retired generation was still live.
    fn free(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let was_live = s.live;
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        was_live
    }
}

type Action = Box<dyn FnOnce(&Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    id: EventId,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Initial heap capacity: sized for a busy pod so steady-state stepping
/// never reallocates the queue's backing storage.
const QUEUE_PREALLOC: usize = 4096;

struct Inner {
    now: SimTime,
    next_seq: u64,
    events: SlotArena,
    timers: SlotArena,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Pending events that have not been cancelled — the true queue depth
    /// (the heap itself may briefly hold cancelled entries until they pop).
    live_pending: usize,
    rng: SimRng,
    trace: Trace,
    metrics: MetricsRegistry,
    spans: SpanTracer,
    processed: u64,
    queue_depth_max: usize,
    /// Cached `sim/*` gauge keys, interned on first publish.
    sim_gauge_keys: Option<[MetricKey; 3]>,
    /// Wall-clock profiler attachment for the classic (unsharded) path:
    /// times each `run_until` window as one `Execute` slice so the
    /// classic engine is comparable with the sharded phase breakdown.
    wallprof: Option<WallProfAttach>,
    /// Request-lifecycle tracer shared by every world of a run (inert by
    /// default).
    reqtracer: RequestTracer,
    /// Ambient trace stamp: set around synchronous call chains (client
    /// dispatch, server request handling) so downstream layers — rpc,
    /// disk — pick up the stamp without plumbing it through every
    /// signature.
    current_stamp: Option<ReqStamp>,
    /// Component teardown hooks, run once by [`Sim::teardown`]. Components
    /// whose closure tables form `Rc` cycles independent of the event
    /// queue (network handler maps, rpc handler maps, remount callbacks)
    /// register a breaker here at construction time.
    teardown_hooks: Vec<Box<dyn FnOnce()>>,
}

/// See [`Sim::set_wallclock_prof`].
struct WallProfAttach {
    prof: Profiler,
    track: ProfTrack,
    world: usize,
}

impl Inner {
    /// Pops heap entries until the head is live; returns the next live
    /// event's instant. Cancelled entries retire their slots here.
    fn drain_cancelled_head(&mut self) -> Option<SimTime> {
        loop {
            let ev = self.queue.peek()?;
            let Reverse(ev) = ev;
            if self.events.is_live(ev.id.0) {
                return Some(ev.at);
            }
            let Some(Reverse(ev)) = self.queue.pop() else {
                unreachable!("peeked entry vanished");
            };
            let (slot, _) = unpack(ev.id.0);
            self.events.free(slot);
        }
    }
}

/// Handle to the simulation engine.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use std::time::Duration;
/// use ustore_sim::{Sim, SimTime};
///
/// let sim = Sim::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// sim.schedule_in(Duration::from_millis(5), move |sim| {
///     assert_eq!(sim.now(), SimTime::from_millis(5));
///     f.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &inner.live_pending)
            .field("processed", &inner.processed)
            .finish()
    }
}

impl Sim {
    /// Creates a simulator whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: SimTime::ZERO,
                next_seq: 0,
                events: SlotArena::default(),
                timers: SlotArena::default(),
                queue: BinaryHeap::with_capacity(QUEUE_PREALLOC),
                live_pending: 0,
                rng: SimRng::seed_from(seed),
                trace: Trace::new(),
                metrics: MetricsRegistry::new(),
                spans: SpanTracer::new(),
                processed: 0,
                queue_depth_max: 0,
                sim_gauge_keys: None,
                wallprof: None,
                reqtracer: RequestTracer::off(),
                current_stamp: None,
                teardown_hooks: Vec::new(),
            })),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.borrow().processed
    }

    /// Number of live (not cancelled) events still pending.
    pub fn pending_events(&self) -> usize {
        self.inner.borrow().live_pending
    }

    /// Schedules `action` to fire at absolute instant `at`.
    ///
    /// Events scheduled in the past (relative to [`Sim::now`]) fire
    /// immediately on the next engine step, preserving scheduling order.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let (slot, gen) = inner.events.alloc();
        let id = EventId(pack(slot, gen));
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queue.push(Reverse(Scheduled {
            at,
            seq,
            id,
            action: Box::new(action),
        }));
        inner.live_pending += 1;
        inner.queue_depth_max = inner.queue_depth_max.max(inner.live_pending);
        id
    }

    /// Schedules `action` to fire after `delay`.
    pub fn schedule_in(&self, delay: Duration, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now() + delay;
        self.schedule_at(at, action)
    }

    /// Schedules `action` at the current instant, after already-queued
    /// same-instant events.
    pub fn schedule_now(&self, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now();
        self.schedule_at(at, action)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled. O(1): the event's slot generation is
    /// compared and its live flag cleared; no per-cancel allocation.
    pub fn cancel(&self, id: EventId) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.events.cancel(id.0) {
            inner.live_pending -= 1;
            true
        } else {
            false
        }
    }

    /// Creates a periodic timer: `action` fires every `interval`, first
    /// after `first_in`, until [`Sim::cancel_timer`] is called.
    pub fn every(
        &self,
        first_in: Duration,
        interval: Duration,
        action: impl FnMut(&Sim) + 'static,
    ) -> TimerId {
        assert!(
            interval > Duration::ZERO,
            "every: interval must be positive"
        );
        let id = {
            let mut inner = self.inner.borrow_mut();
            let (slot, gen) = inner.timers.alloc();
            TimerId(pack(slot, gen))
        };
        let action = Rc::new(RefCell::new(action));
        fn arm(
            sim: &Sim,
            delay: Duration,
            interval: Duration,
            id: TimerId,
            action: Rc<RefCell<dyn FnMut(&Sim)>>,
        ) {
            sim.schedule_in(delay, move |sim| {
                if !sim.inner.borrow().timers.is_live(id.0) {
                    return;
                }
                (action.borrow_mut())(sim);
                // Re-check: the action itself may have cancelled the timer.
                if sim.inner.borrow().timers.is_live(id.0) {
                    arm(sim, interval, interval, id, action);
                }
            });
        }
        arm(self, first_in, interval, id, action);
        id
    }

    /// Stops a periodic timer. Returns `true` on first cancellation. O(1);
    /// the timer's slot is recycled immediately.
    pub fn cancel_timer(&self, id: TimerId) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.timers.cancel(id.0) {
            let (slot, _) = unpack(id.0);
            inner.timers.free(slot);
            true
        } else {
            false
        }
    }

    /// Runs a single pending event. Returns `false` when the queue is empty.
    pub fn step(&self) -> bool {
        loop {
            let action = {
                let mut inner = self.inner.borrow_mut();
                let Some(Reverse(ev)) = inner.queue.pop() else {
                    return false;
                };
                let (slot, _) = unpack(ev.id.0);
                if !inner.events.free(slot) {
                    continue; // cancelled: slot retired, entry dropped
                }
                inner.live_pending -= 1;
                inner.now = ev.at;
                inner.processed += 1;
                ev.action
            };
            action(self);
            return true;
        }
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Attaches a wall-clock [`Profiler`] to this engine: every
    /// subsequent [`Sim::run_until`] window is timed as one `Execute`
    /// phase for `world`, with an events-per-window sample and a slice on
    /// a `classic-engine` Perfetto track. This is the classic-path
    /// equivalent of the shard coordinator's phase timers, so the two
    /// engines are directly comparable in `repro profile`.
    ///
    /// The profiler observes only the monotonic clock and the processed
    /// counter — simulation state, RNG draws and telemetry are untouched.
    pub fn set_wallclock_prof(&self, prof: Profiler, world: usize) {
        let attach = prof.is_on().then(|| WallProfAttach {
            track: prof.register_track("classic-engine"),
            prof,
            world,
        });
        self.inner.borrow_mut().wallprof = attach;
    }

    /// Installs the request-lifecycle tracer for this world. Every world
    /// of a sharded run shares clones of one tracer; the default is the
    /// inert [`RequestTracer::off`].
    ///
    /// The tracer observes sim timestamps only — it never draws RNG,
    /// schedules events, or touches digested telemetry (see
    /// [`crate::reqtrace`]).
    pub fn set_reqtracer(&self, tracer: RequestTracer) {
        self.inner.borrow_mut().reqtracer = tracer;
    }

    /// A clone of this world's request tracer (inert unless installed).
    pub fn reqtracer(&self) -> RequestTracer {
        self.inner.borrow().reqtracer.clone()
    }

    /// Sets the ambient trace stamp for the current synchronous call
    /// chain (see the `current_stamp` field). Callers must clear it
    /// (`None`) when the scope ends.
    pub fn set_current_stamp(&self, stamp: Option<ReqStamp>) {
        self.inner.borrow_mut().current_stamp = stamp;
    }

    /// The ambient trace stamp, if a traced scope is active.
    pub fn current_stamp(&self) -> Option<ReqStamp> {
        self.inner.borrow().current_stamp
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline` even if the queue still holds later events.
    /// Returns the number of events executed by this call (the shard
    /// coordinator feeds it to the per-round profiler probes).
    pub fn run_until(&self, deadline: SimTime) -> u64 {
        let before = self.inner.borrow().processed;
        let profiled = {
            let inner = self.inner.borrow();
            inner
                .wallprof
                .as_ref()
                .and_then(|a| a.prof.tick().map(|t| (t, inner.processed, inner.now)))
        };
        loop {
            let next_at = self.inner.borrow_mut().drain_cancelled_head();
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        let mut inner = self.inner.borrow_mut();
        inner.now = inner.now.max(deadline);
        if let Some((t, ev0, now0)) = profiled {
            let processed = inner.processed;
            let now = inner.now;
            if let Some(a) = &inner.wallprof {
                let ns = a.prof.lap(Some(t));
                a.prof.phase(a.world, Phase::Execute, ns);
                a.prof.epoch_events(a.world, processed - ev0);
                a.track
                    .slice(Phase::Execute, a.world, a.prof.offset_ns(t), ns);
                a.prof.epoch(now.duration_since(now0), false);
            }
        }
        inner.processed - before
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Drops every pending event and timer without running it.
    ///
    /// Scheduled closures capture `Sim` clones (and component handles
    /// that in turn capture `Sim`), so a finished run whose queue still
    /// holds recurring timers — heartbeats, scrub passes, scraper ticks —
    /// is an `Rc` cycle that outlives every external handle: a benchmark
    /// harness executing many runs in one process leaks each run's whole
    /// heap. Calling this after telemetry export breaks those cycles.
    /// The handle remains usable as a clock (`now()`), but nothing is
    /// left to run and nothing new should be scheduled.
    ///
    /// The queue, arenas and their closures are moved out and dropped
    /// *after* the engine borrow is released, so closure drops that
    /// release component `Rc`s can never observe a held borrow.
    ///
    /// Before the queue is dropped, every hook registered through
    /// [`Sim::on_teardown`] runs (in registration order). Components whose
    /// closure tables cycle independently of the queue — a network node's
    /// handler captures an rpc endpoint whose handler map captures the
    /// component that owns the endpoint — register breakers there, so one
    /// `teardown()` call releases the whole component graph.
    pub fn teardown(&self) {
        let hooks = std::mem::take(&mut self.inner.borrow_mut().teardown_hooks);
        for hook in hooks {
            hook();
        }
        let retained = {
            let mut inner = self.inner.borrow_mut();
            inner.live_pending = 0;
            (
                std::mem::take(&mut inner.queue),
                std::mem::take(&mut inner.events),
                std::mem::take(&mut inner.timers),
            )
        };
        drop(retained);
    }

    /// Registers a hook to run once at [`Sim::teardown`] time, before the
    /// event queue is dropped. Hooks must not schedule events or touch the
    /// engine; they exist purely to break component-level `Rc` cycles
    /// (clear handler maps, drop callback vectors). Hooks should capture
    /// components weakly where possible so the registry itself never keeps
    /// a component alive.
    pub fn on_teardown(&self, hook: impl FnOnce() + 'static) {
        self.inner.borrow_mut().teardown_hooks.push(Box::new(hook));
    }

    /// The instant of the earliest live pending event, if any.
    ///
    /// Used by the shard coordinator's merged clock: when every world is
    /// idle past the current epoch barrier, the coordinator jumps straight
    /// to the minimum `next_event_at` across worlds instead of stepping
    /// through empty epochs.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.inner.borrow_mut().drain_cancelled_head()
    }

    /// Applies `f` to the simulation's RNG.
    ///
    /// Taking a closure (rather than returning a guard) prevents accidental
    /// re-entrant borrows while the RNG is held.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SimRng) -> R) -> R {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// Derives an independent RNG stream for a component.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.with_rng(|r| r.fork(label))
    }

    /// Records a trace event at the current virtual time.
    ///
    /// Skips all work (including the component copy) when `level` is below
    /// the recorder's minimum.
    pub fn trace(&self, level: TraceLevel, component: &str, message: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        if !inner.trace.enabled(level) {
            return;
        }
        let now = inner.now;
        inner.trace.record(now, level, component, message.into());
    }

    /// Applies `f` to the trace recorder (to configure or inspect it).
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut Trace) -> R) -> R {
        f(&mut self.inner.borrow_mut().trace)
    }

    // ---- Metrics ----------------------------------------------------------

    /// Adds `n` to the counter `component/name`.
    pub fn count(&self, component: &str, name: &str, n: u64) {
        self.inner
            .borrow_mut()
            .metrics
            .counter_add(component, name, n);
    }

    /// Sets the gauge `component/name` to `v`.
    pub fn gauge_set(&self, component: &str, name: &str, v: f64) {
        self.inner
            .borrow_mut()
            .metrics
            .gauge_set(component, name, v);
    }

    /// Adds `v` (may be negative) to the gauge `component/name`.
    pub fn gauge_add(&self, component: &str, name: &str, v: f64) {
        self.inner
            .borrow_mut()
            .metrics
            .gauge_add(component, name, v);
    }

    /// Records a histogram sample under `component/name`.
    pub fn observe(&self, component: &str, name: &str, v: u64) {
        self.inner.borrow_mut().metrics.observe(component, name, v);
    }

    /// Records a [`Duration`] histogram sample under `component/name`.
    pub fn observe_duration(&self, component: &str, name: &str, d: Duration) {
        self.inner
            .borrow_mut()
            .metrics
            .observe_duration(component, name, d);
    }

    /// Registers (or finds) the counter `component/name` and returns a
    /// cheap handle: string resolution happens once, here, and every
    /// [`CounterHandle::add`] afterwards is an array index.
    pub fn counter(&self, component: &str, name: &str) -> CounterHandle {
        let key = self.inner.borrow_mut().metrics.key(component, name);
        CounterHandle {
            sim: self.clone(),
            key,
        }
    }

    /// Registers (or finds) the gauge `component/name`; see [`Sim::counter`].
    pub fn gauge(&self, component: &str, name: &str) -> GaugeHandle {
        let key = self.inner.borrow_mut().metrics.key(component, name);
        GaugeHandle {
            sim: self.clone(),
            key,
        }
    }

    /// Registers (or finds) the histogram `component/name`; see
    /// [`Sim::counter`].
    pub fn histogram(&self, component: &str, name: &str) -> HistogramHandle {
        let key = self.inner.borrow_mut().metrics.key(component, name);
        HistogramHandle {
            sim: self.clone(),
            key,
        }
    }

    /// Applies `f` to the metrics registry (to query or mutate it).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.borrow_mut().metrics)
    }

    /// Refreshes the engine's own gauges in the registry:
    /// `sim/queue_depth` (live pending events — cancelled entries are not
    /// counted), `sim/queue_depth_max` (peak live depth) and
    /// `sim/events_executed`.
    pub fn publish_engine_gauges(&self) {
        let mut inner = self.inner.borrow_mut();
        let depth = inner.live_pending as f64;
        let depth_max = inner.queue_depth_max as f64;
        let processed = inner.processed as f64;
        let keys = match inner.sim_gauge_keys {
            Some(keys) => keys,
            None => {
                let keys = [
                    inner.metrics.key("sim", "queue_depth"),
                    inner.metrics.key("sim", "queue_depth_max"),
                    inner.metrics.key("sim", "events_executed"),
                ];
                inner.sim_gauge_keys = Some(keys);
                keys
            }
        };
        inner.metrics.gauge_set_key(keys[0], depth);
        inner.metrics.gauge_set_key(keys[1], depth_max);
        inner.metrics.gauge_set_key(keys[2], processed);
    }

    /// A point-in-time copy of the metrics registry, with the engine's own
    /// gauges (see [`Sim::publish_engine_gauges`]) refreshed first.
    /// Per-component event counts come from the components' own counters.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.publish_engine_gauges();
        self.inner.borrow().metrics.snapshot()
    }

    // ---- Spans ------------------------------------------------------------

    /// Starts a root span at the current instant; mirrored into the trace
    /// buffer at `Debug` level (skipped entirely — no formatting — when the
    /// trace recorder drops `Debug`).
    pub fn span_start(&self, component: &str, name: &str) -> SpanId {
        self.span_open(component, name, None)
    }

    /// Starts a span nested under `parent` at the current instant.
    pub fn span_child(&self, parent: SpanId, component: &str, name: &str) -> SpanId {
        self.span_open(component, name, Some(parent))
    }

    fn span_open(&self, component: &str, name: &str, parent: Option<SpanId>) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        let id = inner.spans.start(now, component, name, parent);
        if inner.trace.enabled(TraceLevel::Debug) {
            inner.trace.record(
                now,
                TraceLevel::Debug,
                component,
                format!("span start {name}"),
            );
        }
        id
    }

    /// Ends a span at the current instant (idempotent).
    pub fn span_end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        inner.spans.end(now, id);
        if inner.trace.enabled(TraceLevel::Debug) {
            if let Some(span) = inner.spans.get(id) {
                let (component, line) = (span.component.clone(), format!("span end {}", span.name));
                inner.trace.record(now, TraceLevel::Debug, &component, line);
            }
        }
    }

    /// Attaches (or overrides) a `key=value` attribute on a span.
    pub fn span_attr(&self, id: SpanId, key: &str, value: impl Into<String>) {
        self.inner
            .borrow_mut()
            .spans
            .set_attr(id, key, value.into());
    }

    /// The most recently started still-open span named `name`, if any.
    pub fn find_open_span(&self, name: &str) -> Option<SpanId> {
        self.inner.borrow().spans.find_open(name)
    }

    /// Applies `f` to the span tracer (to query or export it).
    pub fn with_spans<R>(&self, f: impl FnOnce(&mut SpanTracer) -> R) -> R {
        f(&mut self.inner.borrow_mut().spans)
    }
}

/// A pre-resolved counter: created once via [`Sim::counter`], incremented
/// on the hot path without hashing or allocating.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    sim: Sim,
    key: MetricKey,
}

impl CounterHandle {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.sim
            .inner
            .borrow_mut()
            .metrics
            .counter_add_key(self.key, n);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The counter's current value.
    pub fn get(&self) -> u64 {
        self.sim.inner.borrow().metrics.counter_key(self.key)
    }

    /// The underlying registry key.
    pub fn key(&self) -> MetricKey {
        self.key
    }
}

/// A pre-resolved gauge: created once via [`Sim::gauge`].
#[derive(Debug, Clone)]
pub struct GaugeHandle {
    sim: Sim,
    key: MetricKey,
}

impl GaugeHandle {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.sim
            .inner
            .borrow_mut()
            .metrics
            .gauge_set_key(self.key, v);
    }

    /// Adds `v` (may be negative), creating the gauge at zero.
    pub fn add(&self, v: f64) {
        self.sim
            .inner
            .borrow_mut()
            .metrics
            .gauge_add_key(self.key, v);
    }

    /// The gauge's current value, if set.
    pub fn get(&self) -> Option<f64> {
        self.sim.inner.borrow().metrics.gauge_value(self.key)
    }

    /// The underlying registry key.
    pub fn key(&self) -> MetricKey {
        self.key
    }
}

/// A pre-resolved histogram: created once via [`Sim::histogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    sim: Sim,
    key: MetricKey,
}

impl HistogramHandle {
    /// Records one sample (typically nanoseconds).
    pub fn observe(&self, v: u64) {
        self.sim.inner.borrow_mut().metrics.observe_key(self.key, v);
    }

    /// Records a [`Duration`] sample in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.sim
            .inner
            .borrow_mut()
            .metrics
            .observe_duration_key(self.key, d);
    }

    /// The underlying registry key.
    pub fn key(&self) -> MetricKey {
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    fn log_handle() -> (Rc<StdRefCell<Vec<u32>>>, impl Fn(u32) -> Box<dyn Fn(&Sim)>) {
        let log = Rc::new(StdRefCell::new(Vec::new()));
        let l = log.clone();
        let push = move |v: u32| -> Box<dyn Fn(&Sim)> {
            let l = l.clone();
            Box::new(move |_s: &Sim| l.borrow_mut().push(v))
        };
        (log, push)
    }

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p2 = push(2);
        let p1 = push(1);
        let p3 = push(3);
        sim.schedule_at(SimTime::from_millis(20), move |s| p2(s));
        sim.schedule_at(SimTime::from_millis(10), move |s| p1(s));
        sim.schedule_at(SimTime::from_millis(30), move |s| p3(s));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_fifo() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        for i in 0..5 {
            let p = push(i);
            sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p = push(7);
        let id = sim.schedule_in(Duration::from_millis(1), move |s| p(s));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "second cancel reports false");
        sim.run();
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let sim = Sim::new(0);
        let id = sim.schedule_in(Duration::from_millis(1), |_| {});
        sim.run();
        assert!(!sim.cancel(id), "fired event is not cancellable");
    }

    #[test]
    fn slots_are_reused_and_stale_ids_stay_dead() {
        let sim = Sim::new(0);
        // Schedule + fire a batch; the slots all recycle.
        let mut old_ids = Vec::new();
        for i in 0..8u64 {
            old_ids.push(sim.schedule_at(SimTime::from_nanos(i), |_| {}));
        }
        sim.run();
        // New events reuse the retired slots with a bumped generation …
        let (log, push) = log_handle();
        let p = push(1);
        let fresh = sim.schedule_in(Duration::from_millis(1), move |s| p(s));
        // … so cancelling any stale id must not disturb the fresh event.
        for id in old_ids {
            assert!(!sim.cancel(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1]);
        assert!(!sim.cancel(fresh));
    }

    #[test]
    fn pending_events_excludes_cancelled() {
        let sim = Sim::new(0);
        let a = sim.schedule_in(Duration::from_millis(1), |_| {});
        let _b = sim.schedule_in(Duration::from_millis(2), |_| {});
        assert_eq!(sim.pending_events(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending_events(), 1, "cancelled event is not pending");
        sim.run();
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn cancellation_does_not_accumulate_state() {
        // A schedule/cancel churn loop must not grow memory: every slot is
        // recycled once its heap entry pops. Verified via live_pending and
        // the engine's own gauges staying flat.
        let sim = Sim::new(0);
        for round in 0..1000u64 {
            let id = sim.schedule_in(Duration::from_millis(5), |_| {});
            sim.cancel(id);
            sim.run_until(SimTime::from_millis(round));
        }
        assert_eq!(sim.pending_events(), 0);
        let m = sim.metrics_snapshot();
        assert_eq!(m.gauge("sim", "queue_depth"), Some(0.0));
        assert_eq!(m.gauge("sim", "queue_depth_max"), Some(1.0));
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p1 = push(1);
        let p2 = push(2);
        sim.schedule_in(Duration::from_millis(1), move |s| {
            p1(s);
            let p2 = p2;
            s.schedule_in(Duration::from_millis(1), move |s| p2(s));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p1 = push(1);
        let p2 = push(2);
        sim.schedule_at(SimTime::from_millis(5), move |s| p1(s));
        sim.schedule_at(SimTime::from_millis(50), move |s| p2(s));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn periodic_timer_fires_until_cancelled() {
        let sim = Sim::new(0);
        let count = Rc::new(StdRefCell::new(0u32));
        let c = count.clone();
        let id = sim.every(
            Duration::from_millis(10),
            Duration::from_millis(10),
            move |_| {
                *c.borrow_mut() += 1;
            },
        );
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(*count.borrow(), 3);
        sim.cancel_timer(id);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn timer_can_cancel_itself() {
        let sim = Sim::new(0);
        let count = Rc::new(StdRefCell::new(0u32));
        let c = count.clone();
        let cell: Rc<StdRefCell<Option<TimerId>>> = Rc::new(StdRefCell::new(None));
        let cell2 = cell.clone();
        let id = sim.every(
            Duration::from_millis(1),
            Duration::from_millis(1),
            move |s| {
                *c.borrow_mut() += 1;
                if *c.borrow() == 2 {
                    s.cancel_timer(cell2.borrow().expect("timer id set"));
                }
            },
        );
        *cell.borrow_mut() = Some(id);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*count.borrow(), 2);
    }

    #[test]
    fn timer_slot_reuse_does_not_resurrect_cancelled_timers() {
        let sim = Sim::new(0);
        let count = Rc::new(StdRefCell::new(0u32));
        let c = count.clone();
        let old = sim.every(
            Duration::from_millis(10),
            Duration::from_millis(10),
            move |_| {
                *c.borrow_mut() += 1;
            },
        );
        assert!(sim.cancel_timer(old));
        assert!(!sim.cancel_timer(old), "second cancel reports false");
        // A new timer reuses the freed slot; the old timer's armed event
        // must not fire the new timer's (or its own) action.
        let c2 = count.clone();
        let fresh = sim.every(
            Duration::from_millis(100),
            Duration::from_millis(100),
            move |_| {
                *c2.borrow_mut() += 100;
            },
        );
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(*count.borrow(), 200, "only the fresh timer fired");
        assert!(!sim.cancel_timer(old), "stale id stays dead");
        sim.cancel_timer(fresh);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_millis(10));
        let (log, push) = log_handle();
        let p = push(1);
        sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        sim.run();
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn deterministic_rng_across_clones() {
        let sim = Sim::new(77);
        let a = sim.clone().with_rng(|r| r.next_u64());
        let sim2 = Sim::new(77);
        let b = sim2.with_rng(|r| r.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn processed_counter() {
        let sim = Sim::new(0);
        for i in 0..4u64 {
            sim.schedule_at(SimTime::from_nanos(i), |_| {});
        }
        sim.run();
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p = push(1);
        let id = sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        sim.cancel(id);
        sim.run_until(SimTime::from_millis(5));
        assert!(log.borrow().is_empty());
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn metric_handles_share_the_registry_with_string_calls() {
        let sim = Sim::new(0);
        let ops = sim.counter("c", "ops");
        let depth = sim.gauge("c", "depth");
        let lat = sim.histogram("c", "lat");
        ops.inc();
        ops.add(2);
        sim.count("c", "ops", 1);
        depth.set(4.0);
        depth.add(-1.5);
        lat.observe(100);
        lat.observe_duration(Duration::from_nanos(300));
        assert_eq!(ops.get(), 4);
        assert_eq!(depth.get(), Some(2.5));
        let m = sim.metrics_snapshot();
        assert_eq!(m.counter("c", "ops"), 4);
        assert_eq!(m.gauge("c", "depth"), Some(2.5));
        assert_eq!(m.histogram("c", "lat").unwrap().count(), 2);
    }
}
