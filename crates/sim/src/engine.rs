//! The discrete-event simulation engine.
//!
//! [`Sim`] is a cheaply cloneable handle to a single-threaded event queue.
//! Components capture a `Sim` clone (or receive `&Sim` in their event
//! callbacks) and schedule closures at future virtual instants. Events at
//! the same instant fire in scheduling order, which — together with the
//! seeded [`SimRng`] — makes every run bit-for-bit reproducible.

use std::cell::RefCell;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use crate::obs::MetricsRegistry;
use crate::rng::SimRng;
use crate::span::{SpanId, SpanTracer};
use crate::time::SimTime;
use crate::trace::{Trace, TraceLevel};

/// Identifier of a scheduled (cancellable) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Identifier of a periodic timer created by [`Sim::every`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

type Action = Box<dyn FnOnce(&Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    id: EventId,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner {
    now: SimTime,
    next_seq: u64,
    next_event: u64,
    next_timer: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    cancelled_events: HashSet<EventId>,
    cancelled_timers: HashSet<TimerId>,
    rng: SimRng,
    trace: Trace,
    metrics: MetricsRegistry,
    spans: SpanTracer,
    processed: u64,
    queue_depth_max: usize,
}

/// Handle to the simulation engine.
///
/// # Examples
///
/// ```
/// use std::cell::Cell;
/// use std::rc::Rc;
/// use std::time::Duration;
/// use ustore_sim::{Sim, SimTime};
///
/// let sim = Sim::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// sim.schedule_in(Duration::from_millis(5), move |sim| {
///     assert_eq!(sim.now(), SimTime::from_millis(5));
///     f.set(true);
/// });
/// sim.run();
/// assert!(fired.get());
/// ```
#[derive(Clone)]
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Sim")
            .field("now", &inner.now)
            .field("pending", &inner.queue.len())
            .field("processed", &inner.processed)
            .finish()
    }
}

impl Sim {
    /// Creates a simulator whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: SimTime::ZERO,
                next_seq: 0,
                next_event: 0,
                next_timer: 0,
                queue: BinaryHeap::new(),
                cancelled_events: HashSet::new(),
                cancelled_timers: HashSet::new(),
                rng: SimRng::seed_from(seed),
                trace: Trace::new(),
                metrics: MetricsRegistry::new(),
                spans: SpanTracer::new(),
                processed: 0,
                queue_depth_max: 0,
            })),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.borrow().processed
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn pending_events(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Schedules `action` to fire at absolute instant `at`.
    ///
    /// Events scheduled in the past (relative to [`Sim::now`]) fire
    /// immediately on the next engine step, preserving scheduling order.
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let mut inner = self.inner.borrow_mut();
        let at = at.max(inner.now);
        let id = EventId(inner.next_event);
        inner.next_event += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.queue.push(Reverse(Scheduled {
            at,
            seq,
            id,
            action: Box::new(action),
        }));
        inner.queue_depth_max = inner.queue_depth_max.max(inner.queue.len());
        id
    }

    /// Schedules `action` to fire after `delay`.
    pub fn schedule_in(&self, delay: Duration, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now() + delay;
        self.schedule_at(at, action)
    }

    /// Schedules `action` at the current instant, after already-queued
    /// same-instant events.
    pub fn schedule_now(&self, action: impl FnOnce(&Sim) + 'static) -> EventId {
        let at = self.now();
        self.schedule_at(at, action)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled.
    pub fn cancel(&self, id: EventId) -> bool {
        self.inner.borrow_mut().cancelled_events.insert(id)
    }

    /// Creates a periodic timer: `action` fires every `interval`, first
    /// after `first_in`, until [`Sim::cancel_timer`] is called.
    pub fn every(
        &self,
        first_in: Duration,
        interval: Duration,
        action: impl FnMut(&Sim) + 'static,
    ) -> TimerId {
        assert!(
            interval > Duration::ZERO,
            "every: interval must be positive"
        );
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = TimerId(inner.next_timer);
            inner.next_timer += 1;
            id
        };
        let action = Rc::new(RefCell::new(action));
        fn arm(
            sim: &Sim,
            delay: Duration,
            interval: Duration,
            id: TimerId,
            action: Rc<RefCell<dyn FnMut(&Sim)>>,
        ) {
            sim.schedule_in(delay, move |sim| {
                if sim.inner.borrow().cancelled_timers.contains(&id) {
                    return;
                }
                (action.borrow_mut())(sim);
                // Re-check: the action itself may have cancelled the timer.
                if !sim.inner.borrow().cancelled_timers.contains(&id) {
                    arm(sim, interval, interval, id, action);
                }
            });
        }
        arm(self, first_in, interval, id, action);
        id
    }

    /// Stops a periodic timer. Returns `true` on first cancellation.
    pub fn cancel_timer(&self, id: TimerId) -> bool {
        self.inner.borrow_mut().cancelled_timers.insert(id)
    }

    /// Runs a single pending event. Returns `false` when the queue is empty.
    pub fn step(&self) -> bool {
        loop {
            let (action, _at) = {
                let mut inner = self.inner.borrow_mut();
                let Some(Reverse(ev)) = inner.queue.pop() else {
                    return false;
                };
                if inner.cancelled_events.remove(&ev.id) {
                    continue; // tombstone
                }
                inner.now = ev.at;
                inner.processed += 1;
                (ev.action, ev.at)
            };
            action(self);
            return true;
        }
    }

    /// Runs until the event queue is exhausted.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Runs all events scheduled at or before `deadline`, then advances the
    /// clock to `deadline` even if the queue still holds later events.
    pub fn run_until(&self, deadline: SimTime) {
        loop {
            let next_at = {
                let mut inner = self.inner.borrow_mut();
                loop {
                    match inner.queue.peek() {
                        Some(Reverse(ev)) if inner.cancelled_events.contains(&ev.id) => {
                            let Reverse(ev) = inner.queue.pop().expect("peeked event");
                            inner.cancelled_events.remove(&ev.id);
                        }
                        Some(Reverse(ev)) => break Some(ev.at),
                        None => break None,
                    }
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        let mut inner = self.inner.borrow_mut();
        inner.now = inner.now.max(deadline);
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) {
        let deadline = self.now() + d;
        self.run_until(deadline);
    }

    /// Applies `f` to the simulation's RNG.
    ///
    /// Taking a closure (rather than returning a guard) prevents accidental
    /// re-entrant borrows while the RNG is held.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SimRng) -> R) -> R {
        f(&mut self.inner.borrow_mut().rng)
    }

    /// Derives an independent RNG stream for a component.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.with_rng(|r| r.fork(label))
    }

    /// Records a trace event at the current virtual time.
    pub fn trace(&self, level: TraceLevel, component: &str, message: impl Into<String>) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        inner.trace.record(now, level, component, message.into());
    }

    /// Applies `f` to the trace recorder (to configure or inspect it).
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut Trace) -> R) -> R {
        f(&mut self.inner.borrow_mut().trace)
    }

    // ---- Metrics ----------------------------------------------------------

    /// Adds `n` to the counter `component/name`.
    pub fn count(&self, component: &str, name: &str, n: u64) {
        self.inner
            .borrow_mut()
            .metrics
            .counter_add(component, name, n);
    }

    /// Sets the gauge `component/name` to `v`.
    pub fn gauge_set(&self, component: &str, name: &str, v: f64) {
        self.inner
            .borrow_mut()
            .metrics
            .gauge_set(component, name, v);
    }

    /// Adds `v` (may be negative) to the gauge `component/name`.
    pub fn gauge_add(&self, component: &str, name: &str, v: f64) {
        self.inner
            .borrow_mut()
            .metrics
            .gauge_add(component, name, v);
    }

    /// Records a histogram sample under `component/name`.
    pub fn observe(&self, component: &str, name: &str, v: u64) {
        self.inner.borrow_mut().metrics.observe(component, name, v);
    }

    /// Records a [`Duration`] histogram sample under `component/name`.
    pub fn observe_duration(&self, component: &str, name: &str, d: Duration) {
        self.inner
            .borrow_mut()
            .metrics
            .observe_duration(component, name, d);
    }

    /// Applies `f` to the metrics registry (to query or mutate it).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.inner.borrow_mut().metrics)
    }

    /// A point-in-time copy of the metrics registry, with the engine's own
    /// gauges (`sim/queue_depth`, `sim/queue_depth_max`,
    /// `sim/events_executed`) refreshed first. Per-component event counts
    /// come from the components' own counters.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut inner = self.inner.borrow_mut();
        let depth = inner.queue.len() as f64;
        let depth_max = inner.queue_depth_max as f64;
        let processed = inner.processed as f64;
        inner.metrics.gauge_set("sim", "queue_depth", depth);
        inner.metrics.gauge_set("sim", "queue_depth_max", depth_max);
        inner.metrics.gauge_set("sim", "events_executed", processed);
        inner.metrics.snapshot()
    }

    // ---- Spans ------------------------------------------------------------

    /// Starts a root span at the current instant; mirrored into the trace
    /// buffer at `Debug` level.
    pub fn span_start(&self, component: &str, name: &str) -> SpanId {
        self.span_open(component, name, None)
    }

    /// Starts a span nested under `parent` at the current instant.
    pub fn span_child(&self, parent: SpanId, component: &str, name: &str) -> SpanId {
        self.span_open(component, name, Some(parent))
    }

    fn span_open(&self, component: &str, name: &str, parent: Option<SpanId>) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        let id = inner.spans.start(now, component, name, parent);
        inner.trace.record(
            now,
            TraceLevel::Debug,
            component,
            format!("span start {name}"),
        );
        id
    }

    /// Ends a span at the current instant (idempotent).
    pub fn span_end(&self, id: SpanId) {
        let mut inner = self.inner.borrow_mut();
        let now = inner.now;
        inner.spans.end(now, id);
        if let Some(span) = inner.spans.get(id) {
            let (component, line) = (span.component.clone(), format!("span end {}", span.name));
            inner.trace.record(now, TraceLevel::Debug, &component, line);
        }
    }

    /// Attaches (or overrides) a `key=value` attribute on a span.
    pub fn span_attr(&self, id: SpanId, key: &str, value: impl Into<String>) {
        self.inner
            .borrow_mut()
            .spans
            .set_attr(id, key, value.into());
    }

    /// The most recently started still-open span named `name`, if any.
    pub fn find_open_span(&self, name: &str) -> Option<SpanId> {
        self.inner.borrow().spans.find_open(name)
    }

    /// Applies `f` to the span tracer (to query or export it).
    pub fn with_spans<R>(&self, f: impl FnOnce(&mut SpanTracer) -> R) -> R {
        f(&mut self.inner.borrow_mut().spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    fn log_handle() -> (Rc<StdRefCell<Vec<u32>>>, impl Fn(u32) -> Box<dyn Fn(&Sim)>) {
        let log = Rc::new(StdRefCell::new(Vec::new()));
        let l = log.clone();
        let push = move |v: u32| -> Box<dyn Fn(&Sim)> {
            let l = l.clone();
            Box::new(move |_s: &Sim| l.borrow_mut().push(v))
        };
        (log, push)
    }

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p2 = push(2);
        let p1 = push(1);
        let p3 = push(3);
        sim.schedule_at(SimTime::from_millis(20), move |s| p2(s));
        sim.schedule_at(SimTime::from_millis(10), move |s| p1(s));
        sim.schedule_at(SimTime::from_millis(30), move |s| p3(s));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_fifo() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        for i in 0..5 {
            let p = push(i);
            sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p = push(7);
        let id = sim.schedule_in(Duration::from_millis(1), move |s| p(s));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "second cancel reports false");
        sim.run();
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p1 = push(1);
        let p2 = push(2);
        sim.schedule_in(Duration::from_millis(1), move |s| {
            p1(s);
            let p2 = p2;
            s.schedule_in(Duration::from_millis(1), move |s| p2(s));
        });
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p1 = push(1);
        let p2 = push(2);
        sim.schedule_at(SimTime::from_millis(5), move |s| p1(s));
        sim.schedule_at(SimTime::from_millis(50), move |s| p2(s));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2]);
    }

    #[test]
    fn periodic_timer_fires_until_cancelled() {
        let sim = Sim::new(0);
        let count = Rc::new(StdRefCell::new(0u32));
        let c = count.clone();
        let id = sim.every(
            Duration::from_millis(10),
            Duration::from_millis(10),
            move |_| {
                *c.borrow_mut() += 1;
            },
        );
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(*count.borrow(), 3);
        sim.cancel_timer(id);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn timer_can_cancel_itself() {
        let sim = Sim::new(0);
        let count = Rc::new(StdRefCell::new(0u32));
        let c = count.clone();
        let cell: Rc<StdRefCell<Option<TimerId>>> = Rc::new(StdRefCell::new(None));
        let cell2 = cell.clone();
        let id = sim.every(
            Duration::from_millis(1),
            Duration::from_millis(1),
            move |s| {
                *c.borrow_mut() += 1;
                if *c.borrow() == 2 {
                    s.cancel_timer(cell2.borrow().expect("timer id set"));
                }
            },
        );
        *cell.borrow_mut() = Some(id);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*count.borrow(), 2);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_millis(10));
        let (log, push) = log_handle();
        let p = push(1);
        sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        sim.run();
        assert_eq!(*log.borrow(), vec![1]);
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn deterministic_rng_across_clones() {
        let sim = Sim::new(77);
        let a = sim.clone().with_rng(|r| r.next_u64());
        let sim2 = Sim::new(77);
        let b = sim2.with_rng(|r| r.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn processed_counter() {
        let sim = Sim::new(0);
        for i in 0..4u64 {
            sim.schedule_at(SimTime::from_nanos(i), |_| {});
        }
        sim.run();
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let sim = Sim::new(0);
        let (log, push) = log_handle();
        let p = push(1);
        let id = sim.schedule_at(SimTime::from_millis(1), move |s| p(s));
        sim.cancel(id);
        sim.run_until(SimTime::from_millis(5));
        assert!(log.borrow().is_empty());
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }
}
