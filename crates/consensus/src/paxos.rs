//! Pure single-decree Paxos roles.
//!
//! The UStore Master "is implemented as a replicated state machine using
//! the Paxos consensus protocol" (§IV-A, citing Lamport's *Paxos Made
//! Simple*). This module contains the protocol's per-role state machines as
//! pure, message-in/message-out logic — no network, no timers — so that the
//! safety argument can be tested exhaustively (including with property
//! tests). The replicated log in [`crate::rsm`] drives one instance of this
//! logic per log slot.

use std::fmt;

/// A totally ordered proposal number: `(round, proposer id)`.
///
/// Uniqueness per proposer is guaranteed by embedding the node id; ties on
/// `round` break by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Monotonically increasing round number.
    pub round: u64,
    /// Proposing node's id (tie-breaker).
    pub node: u32,
}

impl Ballot {
    /// The smallest ballot; never actually proposed.
    pub const ZERO: Ballot = Ballot { round: 0, node: 0 };

    /// Creates a ballot.
    pub fn new(round: u64, node: u32) -> Self {
        Ballot { round, node }
    }

    /// The next round for `node`, strictly greater than `self`.
    pub fn next_for(self, node: u32) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.round, self.node)
    }
}

/// Acceptor-side state for one decree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acceptor<V> {
    promised: Option<Ballot>,
    accepted: Option<(Ballot, V)>,
}

/// Reply to a prepare (phase 1a) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareReply<V> {
    /// Promise not to accept ballots below `ballot`; reports the
    /// highest-ballot value accepted so far, if any.
    Promised {
        /// The ballot being promised.
        ballot: Ballot,
        /// Previously accepted `(ballot, value)`, if any.
        accepted: Option<(Ballot, V)>,
    },
    /// The acceptor already promised a higher ballot.
    Rejected {
        /// The conflicting promise.
        promised: Ballot,
    },
}

/// Reply to an accept (phase 2a) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptReply {
    /// The value was accepted at `ballot`.
    Accepted {
        /// The accepted ballot.
        ballot: Ballot,
    },
    /// The acceptor promised a higher ballot.
    Rejected {
        /// The conflicting promise.
        promised: Ballot,
    },
}

impl<V: Clone> Acceptor<V> {
    /// Creates a fresh acceptor.
    pub fn new() -> Self {
        Acceptor {
            promised: None,
            accepted: None,
        }
    }

    /// Handles phase 1a.
    pub fn on_prepare(&mut self, ballot: Ballot) -> PrepareReply<V> {
        match self.promised {
            Some(p) if p > ballot => PrepareReply::Rejected { promised: p },
            _ => {
                self.promised = Some(ballot);
                PrepareReply::Promised {
                    ballot,
                    accepted: self.accepted.clone(),
                }
            }
        }
    }

    /// Handles phase 2a.
    pub fn on_accept(&mut self, ballot: Ballot, value: V) -> AcceptReply {
        match self.promised {
            Some(p) if p > ballot => AcceptReply::Rejected { promised: p },
            _ => {
                self.promised = Some(ballot);
                self.accepted = Some((ballot, value));
                AcceptReply::Accepted { ballot }
            }
        }
    }

    /// The highest ballot promised, if any.
    pub fn promised(&self) -> Option<Ballot> {
        self.promised
    }

    /// The accepted `(ballot, value)`, if any.
    pub fn accepted(&self) -> Option<&(Ballot, V)> {
        self.accepted.as_ref()
    }
}

/// Proposer-side state for one decree at one ballot.
#[derive(Debug, Clone)]
pub struct Proposer<V> {
    ballot: Ballot,
    quorum: usize,
    /// Nodes that promised, with any previously accepted value.
    promises: Vec<(u32, Option<(Ballot, V)>)>,
    /// Nodes that accepted in phase 2.
    accepts: Vec<u32>,
    value: Option<V>,
}

impl<V: Clone> Proposer<V> {
    /// Starts a proposal at `ballot` needing `quorum` acceptors.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero.
    pub fn new(ballot: Ballot, quorum: usize) -> Self {
        assert!(quorum > 0, "quorum must be positive");
        Proposer {
            ballot,
            quorum,
            promises: Vec::new(),
            accepts: Vec::new(),
            value: None,
        }
    }

    /// The proposal's ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// Records a promise from `node`. Returns `true` when phase 1 has just
    /// reached quorum (exactly once).
    pub fn on_promise(&mut self, node: u32, accepted: Option<(Ballot, V)>) -> bool {
        if self.promises.iter().any(|(n, _)| *n == node) {
            return false;
        }
        self.promises.push((node, accepted));
        self.promises.len() == self.quorum
    }

    /// Chooses the value for phase 2: the value of the highest-ballot
    /// promise if any acceptor already accepted one, else `preferred`.
    ///
    /// This is the core safety rule of Paxos.
    pub fn choose_value(&mut self, preferred: V) -> V {
        let forced = self
            .promises
            .iter()
            .filter_map(|(_, a)| a.as_ref())
            .max_by_key(|(b, _)| *b)
            .map(|(_, v)| v.clone());
        let v = forced.unwrap_or(preferred);
        self.value = Some(v.clone());
        v
    }

    /// Records an accept from `node`. Returns `true` when the value has
    /// just been chosen (quorum reached, exactly once).
    pub fn on_accepted(&mut self, node: u32) -> bool {
        if self.accepts.contains(&node) {
            return false;
        }
        self.accepts.push(node);
        self.accepts.len() == self.quorum
    }

    /// The value sent in phase 2, if phase 2 has started.
    pub fn value(&self) -> Option<&V> {
        self.value.as_ref()
    }

    /// Number of promises collected.
    pub fn promise_count(&self) -> usize {
        self.promises.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_ordering() {
        assert!(Ballot::new(1, 2) < Ballot::new(2, 1));
        assert!(Ballot::new(2, 1) < Ballot::new(2, 2));
        assert_eq!(Ballot::new(3, 1).next_for(2), Ballot::new(4, 2));
        assert_eq!(Ballot::new(5, 7).to_string(), "5.7");
    }

    #[test]
    fn acceptor_promises_monotonically() {
        let mut a: Acceptor<u32> = Acceptor::new();
        assert!(matches!(
            a.on_prepare(Ballot::new(2, 0)),
            PrepareReply::Promised { .. }
        ));
        // Lower ballot rejected.
        assert_eq!(
            a.on_prepare(Ballot::new(1, 0)),
            PrepareReply::Rejected {
                promised: Ballot::new(2, 0)
            }
        );
        // Equal or higher fine.
        assert!(matches!(
            a.on_prepare(Ballot::new(2, 0)),
            PrepareReply::Promised { .. }
        ));
    }

    #[test]
    fn acceptor_reports_accepted_value_in_promise() {
        let mut a: Acceptor<&str> = Acceptor::new();
        a.on_prepare(Ballot::new(1, 0));
        assert_eq!(
            a.on_accept(Ballot::new(1, 0), "v1"),
            AcceptReply::Accepted {
                ballot: Ballot::new(1, 0)
            }
        );
        match a.on_prepare(Ballot::new(2, 1)) {
            PrepareReply::Promised { accepted, .. } => {
                assert_eq!(accepted, Some((Ballot::new(1, 0), "v1")));
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn acceptor_rejects_stale_accept() {
        let mut a: Acceptor<&str> = Acceptor::new();
        a.on_prepare(Ballot::new(5, 0));
        assert_eq!(
            a.on_accept(Ballot::new(3, 0), "old"),
            AcceptReply::Rejected {
                promised: Ballot::new(5, 0)
            }
        );
        assert!(a.accepted().is_none());
    }

    #[test]
    fn accept_without_prepare_is_allowed() {
        // Multi-Paxos leaders skip phase 1 for new slots.
        let mut a: Acceptor<&str> = Acceptor::new();
        assert!(matches!(
            a.on_accept(Ballot::new(1, 0), "v"),
            AcceptReply::Accepted { .. }
        ));
    }

    #[test]
    fn proposer_quorum_counting() {
        let mut p: Proposer<&str> = Proposer::new(Ballot::new(1, 0), 2);
        assert!(!p.on_promise(0, None));
        assert!(!p.on_promise(0, None), "duplicate promise ignored");
        assert!(p.on_promise(1, None), "quorum reached");
        assert!(!p.on_promise(2, None), "only signalled once");
        assert_eq!(p.promise_count(), 3);
    }

    #[test]
    fn proposer_adopts_highest_accepted() {
        let mut p: Proposer<&str> = Proposer::new(Ballot::new(9, 0), 3);
        p.on_promise(0, Some((Ballot::new(3, 1), "low")));
        p.on_promise(1, None);
        p.on_promise(2, Some((Ballot::new(7, 2), "high")));
        assert_eq!(p.choose_value("mine"), "high");
    }

    #[test]
    fn proposer_free_to_choose_when_unconstrained() {
        let mut p: Proposer<&str> = Proposer::new(Ballot::new(1, 0), 2);
        p.on_promise(0, None);
        p.on_promise(1, None);
        assert_eq!(p.choose_value("mine"), "mine");
        assert_eq!(p.value(), Some(&"mine"));
    }

    #[test]
    fn proposer_accept_quorum() {
        let mut p: Proposer<&str> = Proposer::new(Ballot::new(1, 0), 2);
        assert!(!p.on_accepted(0));
        assert!(!p.on_accepted(0), "duplicate ignored");
        assert!(p.on_accepted(1));
        assert!(!p.on_accepted(2));
    }

    /// A miniature model-checking test: run two competing proposers through
    /// interleaved message orders over three acceptors and assert that at
    /// most one value is ever chosen.
    #[test]
    fn safety_under_contention() {
        // Enumerate interleavings by bitmask: bit k decides which proposer
        // moves at step k. Small but adversarial.
        for schedule in 0u32..64 {
            let mut acceptors: Vec<Acceptor<&str>> = vec![Acceptor::new(); 3];
            let mut chosen: Vec<&str> = Vec::new();
            // Proposer A at ballot (1,0) value "a", proposer B at (2,1) "b".
            for (pi, (ballot, value)) in [(Ballot::new(1, 0), "a"), (Ballot::new(2, 1), "b")]
                .iter()
                .enumerate()
            {
                let order = if schedule & (1 << pi) == 0 {
                    [0usize, 1, 2]
                } else {
                    [2, 1, 0]
                };
                let mut prop = Proposer::new(*ballot, 2);
                let mut phase2 = false;
                for &ai in &order {
                    if !phase2 {
                        if let PrepareReply::Promised { accepted, .. } =
                            acceptors[ai].on_prepare(*ballot)
                        {
                            phase2 = prop.on_promise(ai as u32, accepted);
                            if phase2 {
                                prop.choose_value(value);
                            }
                        }
                    }
                }
                if phase2 {
                    let v = *prop.value().expect("phase 2 value");
                    for &ai in &order {
                        if let AcceptReply::Accepted { .. } = acceptors[ai].on_accept(*ballot, v) {
                            if prop.on_accepted(ai as u32) {
                                chosen.push(v);
                            }
                        }
                    }
                }
            }
            // Both may fail; but two different chosen values is a safety bug.
            if chosen.len() == 2 {
                assert_eq!(chosen[0], chosen[1], "schedule {schedule}: split decision");
            }
        }
    }
}
