//! Session-oriented client for the coordination service.
//!
//! [`CoordClient`] hides the cluster topology: it discovers the leader by
//! following redirects, retries across leader changes, keeps its session
//! alive with pings, and dispatches watch notifications to registered
//! callbacks. [`Election`] is the classic ZooKeeper leader-election recipe
//! (ephemeral-sequential children, watch your predecessor) that the UStore
//! Master's active/standby processes use (§V-B: "The active process is
//! elected by ZooKeeper").

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_net::{Addr, Network, RpcError, RpcNode};
use ustore_sim::{Sim, TraceLevel};

use crate::rsm::{ClientReq, ClientResp, ReadOp, ReadResult, WatchNotification, WatchReg};
use crate::store::{Applied, Command, CreateMode, SessionId, StoreError, WatchEvent};

/// Client-side tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Per-attempt RPC timeout.
    pub op_timeout: Duration,
    /// Attempts across servers before giving up.
    pub max_attempts: u32,
    /// Delay between retries.
    pub retry_backoff: Duration,
    /// Session keep-alive interval (must beat the server's
    /// `session_timeout`).
    pub ping_interval: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            op_timeout: Duration::from_millis(400),
            max_attempts: 10,
            retry_backoff: Duration::from_millis(150),
            ping_interval: Duration::from_millis(500),
        }
    }
}

/// Client-visible failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not reach a leader within the retry budget.
    NoLeader,
    /// The store rejected the command.
    Store(StoreError),
    /// An operation requiring a session ran before [`CoordClient::connect`].
    NotConnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::NoLeader => write!(f, "no coordination leader reachable"),
            ClientError::Store(e) => write!(f, "store error: {e}"),
            ClientError::NotConnected => write!(f, "client has no session"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<StoreError> for ClientError {
    fn from(e: StoreError) -> Self {
        ClientError::Store(e)
    }
}

type WatchCb = Box<dyn FnOnce(&Sim, WatchEvent)>;

struct C {
    config: ClientConfig,
    servers: Vec<Addr>,
    leader_hint: usize,
    session: Option<SessionId>,
    pinging: bool,
    next_watch: u64,
    watches: HashMap<u64, WatchCb>,
}

/// A coordination-service client bound to one network address.
#[derive(Clone)]
pub struct CoordClient {
    rpc: RpcNode,
    inner: Rc<RefCell<C>>,
}

impl fmt::Debug for CoordClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.inner.borrow();
        f.debug_struct("CoordClient")
            .field("addr", self.rpc.addr())
            .field("session", &c.session)
            .finish()
    }
}

impl CoordClient {
    /// Creates a client at `addr` that talks to the cluster at `servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(net: &Network, addr: Addr, servers: Vec<Addr>, config: ClientConfig) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        let rpc = RpcNode::new(net, addr);
        let client = CoordClient {
            rpc,
            inner: Rc::new(RefCell::new(C {
                config,
                servers,
                leader_hint: 0,
                session: None,
                pinging: false,
                next_watch: 0,
                watches: HashMap::new(),
            })),
        };
        let c = client.clone();
        client.rpc.serve("coord.event", move |sim, req, responder| {
            let notif: &WatchNotification = req.downcast_ref().expect("WatchNotification");
            let cb = c.inner.borrow_mut().watches.remove(&notif.watch_id);
            responder.reply(sim, Arc::new(()), 8);
            if let Some(cb) = cb {
                cb(sim, notif.event.clone());
            }
        });
        // Pending watch callbacks capture whoever registered them — which
        // is usually the component that owns this client, a cycle the RPC
        // endpoint's own breaker cannot see. Clear them at teardown,
        // capturing weakly so the registry keeps nothing alive.
        let weak = Rc::downgrade(&client.inner);
        net.on_teardown(move || {
            if let Some(inner) = weak.upgrade() {
                let watches = std::mem::take(&mut inner.borrow_mut().watches);
                drop(watches);
            }
        });
        client
    }

    /// The current session id, if connected.
    pub fn session(&self) -> Option<SessionId> {
        self.inner.borrow().session
    }

    /// The client's network address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    /// The client's RPC endpoint (for co-hosting other protocols).
    pub fn rpc(&self) -> &RpcNode {
        &self.rpc
    }

    // ---- Core request/retry machinery ------------------------------------

    fn request(
        &self,
        sim: &Sim,
        req: ClientReq,
        cb: impl FnOnce(&Sim, Result<ClientResp, ClientError>) + 'static,
    ) {
        let attempts = self.inner.borrow().config.max_attempts;
        self.request_attempt(sim, req, attempts, Box::new(cb));
    }

    fn request_attempt(
        &self,
        sim: &Sim,
        req: ClientReq,
        attempts_left: u32,
        cb: Box<dyn FnOnce(&Sim, Result<ClientResp, ClientError>)>,
    ) {
        if attempts_left == 0 {
            cb(sim, Err(ClientError::NoLeader));
            return;
        }
        let (target, timeout) = {
            let c = self.inner.borrow();
            (c.servers[c.leader_hint].clone(), c.config.op_timeout)
        };
        let this = self.clone();
        self.rpc.call::<ClientResp>(
            sim,
            &target,
            "coord.request",
            Arc::new(req.clone()),
            256,
            timeout,
            move |sim, resp| {
                match resp {
                    Ok(r) => match &*r {
                        ClientResp::Redirect(hint) => {
                            let mut c = this.inner.borrow_mut();
                            match hint {
                                Some(h) if (*h as usize) < c.servers.len() => {
                                    c.leader_hint = *h as usize;
                                }
                                _ => c.leader_hint = (c.leader_hint + 1) % c.servers.len(),
                            }
                        }
                        other => {
                            cb(sim, Ok(other.clone()));
                            return;
                        }
                    },
                    Err(RpcError::Timeout) | Err(_) => {
                        let mut c = this.inner.borrow_mut();
                        c.leader_hint = (c.leader_hint + 1) % c.servers.len();
                    }
                }
                let backoff = this.inner.borrow().config.retry_backoff;
                let this2 = this.clone();
                sim.schedule_in(backoff, move |sim| {
                    this2.request_attempt(sim, req, attempts_left - 1, cb);
                });
            },
        );
    }

    fn write(
        &self,
        sim: &Sim,
        cmd: Command,
        cb: impl FnOnce(&Sim, Result<Applied, ClientError>) + 'static,
    ) {
        self.request(sim, ClientReq::Write(cmd), move |sim, resp| {
            let r = match resp {
                Err(e) => Err(e),
                Ok(ClientResp::Write(Ok(applied))) => Ok(applied),
                Ok(ClientResp::Write(Err(e))) => Err(ClientError::Store(e)),
                Ok(_) => Err(ClientError::NoLeader),
            };
            cb(sim, r);
        });
    }

    // ---- Session ----------------------------------------------------------

    /// Establishes a session; `cb` receives the session id. Pings start
    /// automatically to keep the session (and its ephemerals) alive.
    pub fn connect(
        &self,
        sim: &Sim,
        cb: impl FnOnce(&Sim, Result<SessionId, ClientError>) + 'static,
    ) {
        let id: SessionId = sim.with_rng(|r| r.next_u64() | 1);
        let this = self.clone();
        self.write(sim, Command::CreateSession { id }, move |sim, r| match r {
            Ok(_) => {
                {
                    let mut c = this.inner.borrow_mut();
                    c.session = Some(id);
                    c.pinging = true;
                }
                this.arm_ping(sim);
                sim.trace(
                    TraceLevel::Info,
                    "coord-client",
                    format!("session {id} open"),
                );
                cb(sim, Ok(id));
            }
            Err(e) => cb(sim, Err(e)),
        });
    }

    fn arm_ping(&self, sim: &Sim) {
        let interval = self.inner.borrow().config.ping_interval;
        let this = self.clone();
        sim.schedule_in(interval, move |sim| {
            let session = {
                let c = this.inner.borrow();
                if !c.pinging {
                    return;
                }
                c.session
            };
            if let Some(s) = session {
                this.request(sim, ClientReq::Ping { session: s }, |_, _| {});
            }
            this.arm_ping(sim);
        });
    }

    /// Stops keep-alive pings; the server will expire the session (and
    /// delete its ephemerals) after its session timeout. Simulates a client
    /// crash.
    pub fn stop_pinging(&self) {
        self.inner.borrow_mut().pinging = false;
    }

    fn require_session(&self) -> Result<SessionId, ClientError> {
        self.inner.borrow().session.ok_or(ClientError::NotConnected)
    }

    // ---- Writes -------------------------------------------------------------

    /// Creates a znode; `cb` receives the actual path (sequential modes
    /// append a suffix).
    pub fn create(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        data: Vec<u8>,
        mode: CreateMode,
        cb: impl FnOnce(&Sim, Result<String, ClientError>) + 'static,
    ) {
        let session = match self.require_session() {
            Ok(s) => s,
            Err(e) => {
                sim.schedule_now(move |sim| cb(sim, Err(e)));
                return;
            }
        };
        self.write(
            sim,
            Command::Create {
                session,
                path: path.into(),
                data,
                mode,
            },
            move |sim, r| {
                cb(
                    sim,
                    r.map(|a| match a {
                        Applied::Created(p) => p,
                        other => unreachable!("create returned {other:?}"),
                    }),
                );
            },
        );
    }

    /// Deletes a znode (optionally version-checked).
    pub fn delete(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        version: Option<u64>,
        cb: impl FnOnce(&Sim, Result<(), ClientError>) + 'static,
    ) {
        self.write(
            sim,
            Command::Delete {
                path: path.into(),
                version,
            },
            move |sim, r| {
                cb(sim, r.map(|_| ()));
            },
        );
    }

    /// Replaces a znode's data; `cb` receives the new version.
    pub fn set_data(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        data: Vec<u8>,
        version: Option<u64>,
        cb: impl FnOnce(&Sim, Result<u64, ClientError>) + 'static,
    ) {
        self.write(
            sim,
            Command::SetData {
                path: path.into(),
                data,
                version,
            },
            move |sim, r| {
                cb(
                    sim,
                    r.map(|a| match a {
                        Applied::DataSet(v) => v,
                        other => unreachable!("set_data returned {other:?}"),
                    }),
                );
            },
        );
    }

    // ---- Reads and watches ---------------------------------------------------

    fn read(
        &self,
        sim: &Sim,
        op: ReadOp,
        watch: Option<WatchCb>,
        children_watch: bool,
        cb: impl FnOnce(&Sim, Result<ReadResult, ClientError>) + 'static,
    ) {
        let reg = watch.map(|cb| {
            let mut c = self.inner.borrow_mut();
            let id = c.next_watch;
            c.next_watch += 1;
            c.watches.insert(id, cb);
            WatchReg {
                watch_id: id,
                children: children_watch,
            }
        });
        self.request(sim, ClientReq::Read { op, watch: reg }, move |sim, resp| {
            let r = match resp {
                Err(e) => Err(e),
                Ok(ClientResp::Read(rr)) => Ok(rr),
                Ok(_) => Err(ClientError::NoLeader),
            };
            cb(sim, r);
        });
    }

    /// Reads a node's data and version (None if it does not exist).
    pub fn get(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        cb: impl FnOnce(&Sim, Result<Option<(Vec<u8>, u64)>, ClientError>) + 'static,
    ) {
        self.read(sim, ReadOp::Get(path.into()), None, false, move |sim, r| {
            cb(
                sim,
                r.map(|rr| match rr {
                    ReadResult::Data(d) => d,
                    other => unreachable!("get returned {other:?}"),
                }),
            );
        });
    }

    /// Existence check, optionally leaving a one-shot watch that fires when
    /// the node is created, deleted or its data changes.
    pub fn exists_watch(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        watch: Option<Box<dyn FnOnce(&Sim, WatchEvent)>>,
        cb: impl FnOnce(&Sim, Result<bool, ClientError>) + 'static,
    ) {
        self.read(
            sim,
            ReadOp::Exists(path.into()),
            watch,
            false,
            move |sim, r| {
                cb(
                    sim,
                    r.map(|rr| match rr {
                        ReadResult::Exists(b) => b,
                        other => unreachable!("exists returned {other:?}"),
                    }),
                );
            },
        );
    }

    /// Sorted child names, optionally leaving a one-shot children watch.
    pub fn children_watch(
        &self,
        sim: &Sim,
        path: impl Into<String>,
        watch: Option<Box<dyn FnOnce(&Sim, WatchEvent)>>,
        cb: impl FnOnce(&Sim, Result<Vec<String>, ClientError>) + 'static,
    ) {
        self.read(
            sim,
            ReadOp::Children(path.into()),
            watch,
            true,
            move |sim, r| {
                cb(
                    sim,
                    r.map(|rr| match rr {
                        ReadResult::Children(c) => c,
                        other => unreachable!("children returned {other:?}"),
                    }),
                );
            },
        );
    }
}

// ---- Leader election recipe ----------------------------------------------

/// ZooKeeper-style leader election: each participant creates an
/// ephemeral-sequential node under a base path; the smallest sequence
/// leads; everyone else watches its predecessor.
///
/// The `on_change` callback fires with `true` when this participant
/// acquires leadership. Losing leadership happens only via session expiry
/// (crash), at which point the process is presumed dead.
pub struct Election {
    client: CoordClient,
    base: String,
    me: Rc<RefCell<Option<String>>>,
    on_change: Rc<dyn Fn(&Sim, bool)>,
}

impl fmt::Debug for Election {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Election")
            .field("base", &self.base)
            .field("me", &*self.me.borrow())
            .finish()
    }
}

impl Election {
    /// Joins the election under `base` (created if missing). Requires a
    /// connected client.
    pub fn join(
        sim: &Sim,
        client: &CoordClient,
        base: impl Into<String>,
        on_change: impl Fn(&Sim, bool) + 'static,
    ) -> Rc<Election> {
        let e = Rc::new(Election {
            client: client.clone(),
            base: base.into(),
            me: Rc::new(RefCell::new(None)),
            on_change: Rc::new(on_change),
        });
        // Ensure every component of the base path exists, then register a
        // candidate node and evaluate.
        let components: Vec<String> = {
            let mut acc = String::new();
            e.base
                .split('/')
                .filter(|s| !s.is_empty())
                .map(|seg| {
                    acc.push('/');
                    acc.push_str(seg);
                    acc.clone()
                })
                .collect()
        };
        fn ensure(sim: &Sim, e: Rc<Election>, components: Vec<String>, idx: usize) {
            if idx == components.len() {
                let e2 = e.clone();
                let path = format!("{}/cand-", e.base);
                e.client.create(
                    sim,
                    path,
                    Vec::new(),
                    CreateMode::EphemeralSequential,
                    move |sim, r| match r {
                        Ok(actual) => {
                            *e2.me.borrow_mut() = Some(actual);
                            e2.evaluate(sim);
                        }
                        Err(err) => sim.trace(
                            TraceLevel::Error,
                            "election",
                            format!("cannot create candidate node: {err}"),
                        ),
                    },
                );
                return;
            }
            let path = components[idx].clone();
            let e2 = e.clone();
            e.client.create(
                sim,
                path,
                Vec::new(),
                CreateMode::Persistent,
                move |sim, r| match r {
                    Ok(_) | Err(ClientError::Store(StoreError::NodeExists)) => {
                        ensure(sim, e2, components, idx + 1);
                    }
                    Err(other) => sim.trace(
                        TraceLevel::Error,
                        "election",
                        format!("cannot ensure base path: {other}"),
                    ),
                },
            );
        }
        ensure(sim, e.clone(), components, 0);
        e
    }

    /// This participant's candidate node path, once created.
    pub fn candidate_path(&self) -> Option<String> {
        self.me.borrow().clone()
    }

    fn evaluate(self: &Rc<Self>, sim: &Sim) {
        let Some(me) = self.me.borrow().clone() else {
            return;
        };
        let this = self.clone();
        self.client
            .children_watch(sim, self.base.clone(), None, move |sim, r| {
                let Ok(mut kids) = r else { return };
                kids.sort();
                let my_name = me.rsplit('/').next().expect("path has name").to_owned();
                let Some(my_idx) = kids.iter().position(|k| *k == my_name) else {
                    // Our node is gone (session expired): we lost.
                    (this.on_change)(sim, false);
                    return;
                };
                if my_idx == 0 {
                    sim.trace(
                        TraceLevel::Info,
                        "election",
                        format!("{} leads {}", my_name, this.base),
                    );
                    (this.on_change)(sim, true);
                } else {
                    // Watch the predecessor's deletion, then re-evaluate.
                    let pred = format!("{}/{}", this.base, kids[my_idx - 1]);
                    let this2 = this.clone();
                    let watch: Box<dyn FnOnce(&Sim, WatchEvent)> = Box::new(move |sim, _ev| {
                        this2.evaluate(sim);
                    });
                    let this3 = this.clone();
                    this.client
                        .exists_watch(sim, pred, Some(watch), move |sim, r| {
                            // If the predecessor vanished between listing and watch
                            // registration, re-evaluate immediately.
                            if let Ok(false) = r {
                                this3.evaluate(sim);
                            }
                        });
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsm::{CoordConfig, CoordServer};
    use std::cell::Cell;
    use ustore_net::NetConfig;
    use ustore_sim::SimTime;

    struct Fixture {
        sim: Sim,
        net: Network,
        servers: Vec<CoordServer>,
    }

    fn fixture(seed: u64) -> Fixture {
        let sim = Sim::new(seed);
        let net = Network::new(NetConfig::default());
        let addrs: Vec<Addr> = (0..5).map(|i| Addr::new(format!("coord-{i}"))).collect();
        let servers = (0..5)
            .map(|i| CoordServer::new(&sim, &net, i, addrs.clone(), CoordConfig::default()))
            .collect();
        Fixture { sim, net, servers }
    }

    fn coord_addrs() -> Vec<Addr> {
        (0..5).map(|i| Addr::new(format!("coord-{i}"))).collect()
    }

    fn connected_client(f: &Fixture, name: &str) -> CoordClient {
        let client = CoordClient::new(
            &f.net,
            Addr::new(name),
            coord_addrs(),
            ClientConfig::default(),
        );
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        client.connect(&f.sim, move |_, r| {
            r.expect("connect");
            o.set(true);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(5));
        assert!(ok.get(), "client connected");
        client
    }

    #[test]
    fn connect_and_crud() {
        let f = fixture(21);
        f.sim.run_until(SimTime::from_secs(2));
        let client = connected_client(&f, "client-a");
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let c2 = client.clone();
        client.create(
            &f.sim,
            "/cfg",
            b"v1".to_vec(),
            CreateMode::Persistent,
            move |sim, r| {
                assert_eq!(r.expect("create"), "/cfg");
                let c3 = c2.clone();
                c2.set_data(sim, "/cfg", b"v2".to_vec(), None, move |sim, r| {
                    assert_eq!(r.expect("set"), 1);
                    let c4 = c3.clone();
                    c3.get(sim, "/cfg", move |sim, r| {
                        assert_eq!(r.expect("get"), Some((b"v2".to_vec(), 1)));
                        c4.delete(sim, "/cfg", None, move |_, r| {
                            r.expect("delete");
                            d.set(true);
                        });
                    });
                });
            },
        );
        f.sim.run_until(f.sim.now() + Duration::from_secs(5));
        assert!(done.get());
    }

    #[test]
    fn store_errors_surface() {
        let f = fixture(22);
        f.sim.run_until(SimTime::from_secs(2));
        let client = connected_client(&f, "client-a");
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        client.delete(&f.sim, "/missing", None, move |_, r| {
            assert_eq!(r.unwrap_err(), ClientError::Store(StoreError::NoNode));
            g.set(true);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(5));
        assert!(got.get());
    }

    #[test]
    fn create_before_connect_fails() {
        let f = fixture(26);
        let client = CoordClient::new(
            &f.net,
            Addr::new("client-x"),
            coord_addrs(),
            ClientConfig::default(),
        );
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        client.create(&f.sim, "/x", vec![], CreateMode::Persistent, move |_, r| {
            assert_eq!(r.unwrap_err(), ClientError::NotConnected);
            g.set(true);
        });
        f.sim.run_until(SimTime::from_secs(1));
        assert!(got.get());
    }

    #[test]
    fn operations_survive_leader_failover() {
        let f = fixture(23);
        f.sim.run_until(SimTime::from_secs(2));
        let client = connected_client(&f, "client-a");
        // Kill the current leader.
        let leader = f
            .servers
            .iter()
            .find(|s| s.is_leader())
            .expect("leader")
            .clone();
        leader.pause();
        f.net.set_down(&f.sim, &leader.addr());
        // Issue a write immediately; the client should retry to the new
        // leader.
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        client.create(
            &f.sim,
            "/survives",
            Vec::new(),
            CreateMode::Persistent,
            move |_, r| {
                r.expect("create after failover");
                d.set(true);
            },
        );
        f.sim.run_until(f.sim.now() + Duration::from_secs(10));
        assert!(done.get());
    }

    #[test]
    fn ephemerals_vanish_when_client_stops_pinging() {
        let f = fixture(24);
        f.sim.run_until(SimTime::from_secs(2));
        let a = connected_client(&f, "client-a");
        let b = connected_client(&f, "client-b");
        a.create(
            &f.sim,
            "/live",
            Vec::new(),
            CreateMode::Persistent,
            |_, r| {
                r.expect("base");
            },
        );
        f.sim.run_until(f.sim.now() + Duration::from_secs(2));
        a.create(
            &f.sim,
            "/live/host-a",
            Vec::new(),
            CreateMode::Ephemeral,
            |_, r| {
                r.expect("ephemeral");
            },
        );
        f.sim.run_until(f.sim.now() + Duration::from_secs(2));
        // Watch from b, then crash a.
        let fired = Rc::new(Cell::new(false));
        let fi = fired.clone();
        let watch: Box<dyn FnOnce(&Sim, WatchEvent)> = Box::new(move |_, ev| {
            assert_eq!(ev, WatchEvent::Deleted("/live/host-a".into()));
            fi.set(true);
        });
        b.exists_watch(&f.sim, "/live/host-a", Some(watch), |_, r| {
            assert!(r.expect("exists"), "node present before crash");
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(1));
        a.stop_pinging();
        f.sim.run_until(f.sim.now() + Duration::from_secs(10));
        assert!(fired.get(), "deletion watch fired after session expiry");
        let check = Rc::new(Cell::new(false));
        let ch = check.clone();
        b.exists_watch(&f.sim, "/live/host-a", None, move |_, r| {
            assert!(!r.expect("exists check"));
            ch.set(true);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(3));
        assert!(check.get());
    }

    #[test]
    fn election_picks_one_and_fails_over() {
        let f = fixture(25);
        f.sim.run_until(SimTime::from_secs(2));
        let a = connected_client(&f, "master-a");
        let b = connected_client(&f, "master-b");
        let a_leads = Rc::new(Cell::new(false));
        let b_leads = Rc::new(Cell::new(false));
        let al = a_leads.clone();
        let _ea = Election::join(&f.sim, &a, "/election/master", move |_, lead| {
            al.set(lead);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(3));
        let bl = b_leads.clone();
        let _eb = Election::join(&f.sim, &b, "/election/master", move |_, lead| {
            bl.set(lead);
        });
        f.sim.run_until(f.sim.now() + Duration::from_secs(3));
        assert!(a_leads.get(), "first joiner leads");
        assert!(!b_leads.get(), "second joiner waits");
        // Crash a: its ephemeral candidate node expires, b takes over.
        a.stop_pinging();
        f.sim.run_until(f.sim.now() + Duration::from_secs(12));
        assert!(b_leads.get(), "standby took over after leader crash");
    }
}
