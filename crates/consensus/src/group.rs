//! Multi-group instantiation of the coordination substrate.
//!
//! The partitioned Master keeps each per-unit-group metadata namespace in
//! its **own replicated log**: an independent replica set of the existing
//! [`CoordServer`] machinery, addressed by prefixing the base cluster's
//! replica names (`coord-3` → `p1-coord-3` for partition 1). Group 0 *is*
//! the base cluster — elections, sessions and legacy metadata stay there —
//! so a single-partition deployment instantiates nothing new and remains
//! byte-identical with the pre-partition system.
//!
//! Keeping groups as whole replica sets (rather than multiplexing several
//! logs over one set) means no wire-format or consensus-protocol change:
//! each group runs the proven single-log Paxos RSM, and groups share
//! nothing but the simulated network.

use ustore_net::{Addr, Network};
use ustore_sim::Sim;

use crate::rsm::{CoordConfig, CoordServer};

/// Derives the replica addresses of metadata-partition group `group` from
/// the base cluster's addresses. Group 0 is the base cluster itself.
pub fn group_addrs(base: &[Addr], group: u32) -> Vec<Addr> {
    if group == 0 {
        return base.to_vec();
    }
    base.iter()
        .map(|a| Addr::new(format!("p{group}-{a}")))
        .collect()
}

/// One additional replicated-log group: an independent `CoordServer`
/// replica set at [`group_addrs`]-derived addresses.
#[derive(Debug)]
pub struct CoordGroup {
    group: u32,
    servers: Vec<CoordServer>,
}

impl CoordGroup {
    /// Instantiates group `group` (≥ 1) as a fresh replica set mirroring
    /// the base cluster's size, on the same simulator and network.
    ///
    /// # Panics
    ///
    /// Panics on `group == 0` — group 0 is the pre-existing base cluster,
    /// never instantiated here.
    pub fn new(
        sim: &Sim,
        net: &Network,
        group: u32,
        base_addrs: &[Addr],
        config: CoordConfig,
    ) -> Self {
        assert!(group >= 1, "group 0 is the base cluster");
        let addrs = group_addrs(base_addrs, group);
        let servers = (0..addrs.len() as u32)
            .map(|i| CoordServer::new(sim, net, i, addrs.clone(), config.clone()))
            .collect();
        CoordGroup { group, servers }
    }

    /// The group index (≥ 1).
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The group's replicas.
    pub fn servers(&self) -> &[CoordServer] {
        &self.servers
    }

    /// The group's replica addresses.
    pub fn addrs(&self) -> Vec<Addr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }

    /// Length of the group's replicated log: the longest applied prefix
    /// across replicas (replicas catch up asynchronously, so the max is
    /// the log's true committed extent).
    pub fn log_len(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| s.applied_len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::time::Duration;

    use ustore_net::NetConfig;

    use crate::client::{ClientConfig, CoordClient};

    #[test]
    fn group_addrs_prefix_and_identity() {
        let base: Vec<Addr> = (0..3).map(|i| Addr::new(format!("coord-{i}"))).collect();
        assert_eq!(group_addrs(&base, 0), base);
        let g2 = group_addrs(&base, 2);
        assert_eq!(g2[0].as_str(), "p2-coord-0");
        assert_eq!(g2[2].as_str(), "p2-coord-2");
    }

    #[test]
    fn groups_are_independent_logs() {
        let sim = Sim::new(71);
        let net = Network::new(NetConfig::default());
        let base: Vec<Addr> = (0..3).map(|i| Addr::new(format!("coord-{i}"))).collect();
        let base_servers: Vec<CoordServer> = (0..3)
            .map(|i| CoordServer::new(&sim, &net, i, base.clone(), CoordConfig::default()))
            .collect();
        let g1 = CoordGroup::new(&sim, &net, 1, &base, CoordConfig::default());
        sim.run_until(sim.now() + Duration::from_secs(5));

        // Write one znode through a client of group 1 only.
        let client = CoordClient::new(
            &net,
            Addr::new("g1-client"),
            g1.addrs(),
            ClientConfig::default(),
        );
        let wrote = Rc::new(Cell::new(false));
        let w = wrote.clone();
        client.connect(&sim, move |sim2, r| {
            r.expect("connect to group 1");
            // `client` lives outside; re-create cheaply via capture.
            let _ = sim2;
            w.set(true);
        });
        sim.run_until(sim.now() + Duration::from_secs(2));
        assert!(wrote.get());
        let created = Rc::new(Cell::new(false));
        let c = created.clone();
        client.create(
            &sim,
            "/only-in-g1",
            b"x".to_vec(),
            crate::store::CreateMode::Persistent,
            move |_, r| {
                r.expect("create in group 1");
                c.set(true);
            },
        );
        sim.run_until(sim.now() + Duration::from_secs(3));
        assert!(created.get());

        // The write landed in group 1's log, not the base cluster's store.
        assert!(g1.log_len() > 0);
        let base_has = base_servers
            .iter()
            .any(|s| s.with_store(|st| st.exists("/only-in-g1")));
        assert!(!base_has, "base cluster must not see group 1 writes");
        let g1_has = g1
            .servers()
            .iter()
            .any(|s| s.with_store(|st| st.exists("/only-in-g1")));
        assert!(g1_has, "group 1 replicas hold the znode");
    }
}
