//! # ustore-consensus — Paxos and a ZooKeeper-like coordination service
//!
//! The UStore Master is "implemented as a replicated state machine using
//! the Paxos consensus protocol" and the prototype stores its metadata in
//! ZooKeeper (§IV-A, §V-B). This crate builds that substrate from scratch
//! over the simulated network:
//!
//! - [`paxos`]: pure single-decree Paxos roles (safety-tested).
//! - [`store`]: the hierarchical znode store as a deterministic state
//!   machine (ephemeral/sequential nodes, versions, watch events).
//! - [`rsm`]: multi-Paxos replication of the store across a 5-node cluster
//!   ([`CoordServer`]), with leader election, catch-up, client sessions and
//!   watches.
//! - [`client`]: a session-oriented client ([`CoordClient`]) with automatic
//!   leader discovery and retry, plus a leader-election recipe used by the
//!   Master's active/standby processes.
//! - [`group`]: independent replica groups ([`CoordGroup`]) backing the
//!   partitioned Master's per-unit-group metadata namespaces, each with
//!   its own replicated log.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod group;
pub mod paxos;
pub mod rsm;
pub mod store;

pub use client::{ClientConfig, ClientError, CoordClient, Election};
pub use group::{group_addrs, CoordGroup};
pub use paxos::{AcceptReply, Acceptor, Ballot, PrepareReply, Proposer};
pub use rsm::{CoordConfig, CoordServer, ReadOp, ReadResult, WatchNotification, WatchReg};
pub use store::{
    Applied, Command, CreateMode, SessionId, Stat, StoreError, WatchEvent, ZnodeStore,
};
