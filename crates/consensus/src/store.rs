//! The coordination service's hierarchical store, as a pure state machine.
//!
//! The paper's prototype stores the Master's metadata "in ZooKeeper …
//! organized in a hierarchical tree structure. Each host creates an
//! ephemeral znode to represent its liveness" (§V-B). [`ZnodeStore`] is
//! that data model: a tree of znodes with versions, ephemeral and
//! sequential creation modes, and session-scoped lifetimes. It is a
//! deterministic state machine — commands in, results and watch events out
//! — which is exactly what the Paxos replicated log in [`crate::rsm`]
//! needs to replicate it.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A coordination session (one client connection's lifetime).
pub type SessionId = u64;

/// Creation mode of a znode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CreateMode {
    /// Survives its creator.
    Persistent,
    /// Deleted automatically when the creating session expires.
    Ephemeral,
    /// Persistent with a server-assigned monotonic suffix.
    PersistentSequential,
    /// Ephemeral with a server-assigned monotonic suffix.
    EphemeralSequential,
}

impl CreateMode {
    /// Whether this mode ties the node to a session.
    pub fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    /// Whether this mode appends a sequence number.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Errors returned by store commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The path (or its parent) does not exist.
    NoNode,
    /// A node already exists at the path.
    NodeExists,
    /// Delete of a node that still has children.
    NotEmpty,
    /// Conditional op failed the version check.
    BadVersion,
    /// The command referenced an unknown or expired session.
    NoSession,
    /// Ephemeral nodes cannot have children.
    EphemeralParent,
    /// Malformed path.
    BadPath,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StoreError::NoNode => "no such znode",
            StoreError::NodeExists => "znode already exists",
            StoreError::NotEmpty => "znode has children",
            StoreError::BadVersion => "version check failed",
            StoreError::NoSession => "no such session",
            StoreError::EphemeralParent => "ephemeral znodes cannot have children",
            StoreError::BadPath => "malformed znode path",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StoreError {}

/// A replicated command (one log entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Registers a new session.
    CreateSession {
        /// Client-chosen unique session id.
        id: SessionId,
    },
    /// Expires a session, deleting its ephemerals.
    ExpireSession {
        /// The session to expire.
        id: SessionId,
    },
    /// Creates a znode.
    Create {
        /// Owning session (for ephemerals; validated for all).
        session: SessionId,
        /// Requested path (sequential modes append a suffix).
        path: String,
        /// Initial data.
        data: Vec<u8>,
        /// Creation mode.
        mode: CreateMode,
    },
    /// Deletes a znode.
    Delete {
        /// Path to delete.
        path: String,
        /// If set, only delete when the data version matches.
        version: Option<u64>,
    },
    /// Replaces a znode's data.
    SetData {
        /// Path to update.
        path: String,
        /// New data.
        data: Vec<u8>,
        /// If set, only update when the data version matches.
        version: Option<u64>,
    },
    /// No-op (used by new leaders to fill log gaps).
    Noop,
}

/// Successful command results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// Session registered.
    SessionCreated,
    /// Session expired; lists the ephemeral paths that were removed.
    SessionExpired(Vec<String>),
    /// Node created at the (possibly sequence-suffixed) path.
    Created(String),
    /// Node deleted.
    Deleted,
    /// Data updated; reports the new version.
    DataSet(u64),
    /// No-op applied.
    Noop,
}

/// What happened to a path, for watch matching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WatchEvent {
    /// The node was created.
    Created(String),
    /// The node was deleted.
    Deleted(String),
    /// The node's data changed.
    DataChanged(String),
    /// The node's child list changed.
    ChildrenChanged(String),
}

impl WatchEvent {
    /// The affected path.
    pub fn path(&self) -> &str {
        match self {
            WatchEvent::Created(p)
            | WatchEvent::Deleted(p)
            | WatchEvent::DataChanged(p)
            | WatchEvent::ChildrenChanged(p) => p,
        }
    }
}

/// A stored node's metadata returned by reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    /// Data version (bumped by `SetData`).
    pub version: u64,
    /// Owning session for ephemerals.
    pub owner: Option<SessionId>,
    /// Whether the node is ephemeral.
    pub ephemeral: bool,
}

#[derive(Debug, Clone)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    owner: Option<SessionId>,
    ephemeral: bool,
    child_seq: u64,
}

/// The deterministic store state machine.
#[derive(Debug, Clone, Default)]
pub struct ZnodeStore {
    nodes: BTreeMap<String, Znode>,
    sessions: HashMap<SessionId, HashSet<String>>,
}

fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "/",
    }
}

fn valid_path(path: &str) -> bool {
    path.starts_with('/')
        && (path == "/" || !path.ends_with('/'))
        && !path.contains("//")
        && !path.is_empty()
}

impl ZnodeStore {
    /// Creates an empty store (the root `/` implicitly exists).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one command, returning the result and any watch events.
    pub fn apply(&mut self, cmd: &Command) -> (Result<Applied, StoreError>, Vec<WatchEvent>) {
        match cmd {
            Command::Noop => (Ok(Applied::Noop), Vec::new()),
            Command::CreateSession { id } => {
                self.sessions.entry(*id).or_default();
                (Ok(Applied::SessionCreated), Vec::new())
            }
            Command::ExpireSession { id } => {
                let Some(paths) = self.sessions.remove(id) else {
                    return (Err(StoreError::NoSession), Vec::new());
                };
                let mut removed: Vec<String> = paths.into_iter().collect();
                removed.sort();
                let mut events = Vec::new();
                for p in &removed {
                    if self.nodes.remove(p).is_some() {
                        events.push(WatchEvent::Deleted(p.clone()));
                        events.push(WatchEvent::ChildrenChanged(parent_of(p).to_owned()));
                    }
                }
                (Ok(Applied::SessionExpired(removed)), events)
            }
            Command::Create {
                session,
                path,
                data,
                mode,
            } => self.create(*session, path, data.clone(), *mode),
            Command::Delete { path, version } => self.delete(path, *version),
            Command::SetData {
                path,
                data,
                version,
            } => self.set_data(path, data.clone(), *version),
        }
    }

    fn node_exists(&self, path: &str) -> bool {
        path == "/" || self.nodes.contains_key(path)
    }

    fn create(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> (Result<Applied, StoreError>, Vec<WatchEvent>) {
        if !valid_path(path) || path == "/" {
            return (Err(StoreError::BadPath), Vec::new());
        }
        if !self.sessions.contains_key(&session) {
            return (Err(StoreError::NoSession), Vec::new());
        }
        let parent = parent_of(path).to_owned();
        if !self.node_exists(&parent) {
            return (Err(StoreError::NoNode), Vec::new());
        }
        if let Some(p) = self.nodes.get(&parent) {
            if p.ephemeral {
                return (Err(StoreError::EphemeralParent), Vec::new());
            }
        }
        let actual = if mode.is_sequential() {
            let seq = if parent == "/" {
                // Root sequence counter kept on a synthetic root entry.
                let root = self.nodes.entry("/".to_owned()).or_insert(Znode {
                    data: Vec::new(),
                    version: 0,
                    owner: None,
                    ephemeral: false,
                    child_seq: 0,
                });
                let s = root.child_seq;
                root.child_seq += 1;
                s
            } else {
                let p = self.nodes.get_mut(&parent).expect("parent exists");
                let s = p.child_seq;
                p.child_seq += 1;
                s
            };
            format!("{path}{seq:010}")
        } else {
            path.to_owned()
        };
        if self.nodes.contains_key(&actual) {
            return (Err(StoreError::NodeExists), Vec::new());
        }
        let ephemeral = mode.is_ephemeral();
        self.nodes.insert(
            actual.clone(),
            Znode {
                data,
                version: 0,
                owner: ephemeral.then_some(session),
                ephemeral,
                child_seq: 0,
            },
        );
        if ephemeral {
            self.sessions
                .get_mut(&session)
                .expect("session checked")
                .insert(actual.clone());
        }
        let events = vec![
            WatchEvent::Created(actual.clone()),
            WatchEvent::ChildrenChanged(parent),
        ];
        (Ok(Applied::Created(actual)), events)
    }

    fn delete(
        &mut self,
        path: &str,
        version: Option<u64>,
    ) -> (Result<Applied, StoreError>, Vec<WatchEvent>) {
        if path == "/" {
            return (Err(StoreError::BadPath), Vec::new());
        }
        let Some(node) = self.nodes.get(path) else {
            return (Err(StoreError::NoNode), Vec::new());
        };
        if let Some(v) = version {
            if node.version != v {
                return (Err(StoreError::BadVersion), Vec::new());
            }
        }
        if self.children(path).next().is_some() {
            return (Err(StoreError::NotEmpty), Vec::new());
        }
        let node = self.nodes.remove(path).expect("checked above");
        if let Some(owner) = node.owner {
            if let Some(s) = self.sessions.get_mut(&owner) {
                s.remove(path);
            }
        }
        let events = vec![
            WatchEvent::Deleted(path.to_owned()),
            WatchEvent::ChildrenChanged(parent_of(path).to_owned()),
        ];
        (Ok(Applied::Deleted), events)
    }

    fn set_data(
        &mut self,
        path: &str,
        data: Vec<u8>,
        version: Option<u64>,
    ) -> (Result<Applied, StoreError>, Vec<WatchEvent>) {
        let Some(node) = self.nodes.get_mut(path) else {
            return (Err(StoreError::NoNode), Vec::new());
        };
        if let Some(v) = version {
            if node.version != v {
                return (Err(StoreError::BadVersion), Vec::new());
            }
        }
        node.data = data;
        node.version += 1;
        let v = node.version;
        (
            Ok(Applied::DataSet(v)),
            vec![WatchEvent::DataChanged(path.to_owned())],
        )
    }

    /// Reads a node's data and stat.
    pub fn get(&self, path: &str) -> Option<(Vec<u8>, Stat)> {
        self.nodes.get(path).map(|n| {
            (
                n.data.clone(),
                Stat {
                    version: n.version,
                    owner: n.owner,
                    ephemeral: n.ephemeral,
                },
            )
        })
    }

    /// Whether a node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.node_exists(path) && (path == "/" || self.nodes.contains_key(path))
    }

    /// Iterates the direct children names of `path`, sorted.
    pub fn children<'a>(&'a self, path: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        let prefix = if path == "/" {
            "/".to_owned()
        } else {
            format!("{path}/")
        };
        let prefix_len = prefix.len();
        self.nodes
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(&prefix))
            .filter(move |(k, _)| !k[prefix_len..].contains('/'))
            .filter(|(k, _)| k.as_str() != "/")
            .map(move |(k, _)| &k[prefix_len..])
    }

    /// All live session ids, sorted.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut v: Vec<SessionId> = self.sessions.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether a session is live.
    pub fn has_session(&self, id: SessionId) -> bool {
        self.sessions.contains_key(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_session() -> ZnodeStore {
        let mut s = ZnodeStore::new();
        s.apply(&Command::CreateSession { id: 1 })
            .0
            .expect("session");
        s
    }

    fn create(s: &mut ZnodeStore, path: &str, mode: CreateMode) -> Result<Applied, StoreError> {
        s.apply(&Command::Create {
            session: 1,
            path: path.to_owned(),
            data: b"x".to_vec(),
            mode,
        })
        .0
    }

    #[test]
    fn create_get_set_delete() {
        let mut s = store_with_session();
        assert_eq!(
            create(&mut s, "/a", CreateMode::Persistent),
            Ok(Applied::Created("/a".into()))
        );
        let (data, stat) = s.get("/a").expect("exists");
        assert_eq!(data, b"x");
        assert_eq!(stat.version, 0);
        let (r, evs) = s.apply(&Command::SetData {
            path: "/a".into(),
            data: b"y".to_vec(),
            version: None,
        });
        assert_eq!(r, Ok(Applied::DataSet(1)));
        assert_eq!(evs, vec![WatchEvent::DataChanged("/a".into())]);
        let (r, _) = s.apply(&Command::Delete {
            path: "/a".into(),
            version: None,
        });
        assert_eq!(r, Ok(Applied::Deleted));
        assert!(s.get("/a").is_none());
    }

    #[test]
    fn parent_must_exist_and_duplicates_rejected() {
        let mut s = store_with_session();
        assert_eq!(
            create(&mut s, "/a/b", CreateMode::Persistent),
            Err(StoreError::NoNode)
        );
        create(&mut s, "/a", CreateMode::Persistent).expect("create /a");
        create(&mut s, "/a/b", CreateMode::Persistent).expect("create /a/b");
        assert_eq!(
            create(&mut s, "/a", CreateMode::Persistent),
            Err(StoreError::NodeExists)
        );
    }

    #[test]
    fn delete_nonempty_rejected() {
        let mut s = store_with_session();
        create(&mut s, "/a", CreateMode::Persistent).expect("a");
        create(&mut s, "/a/b", CreateMode::Persistent).expect("b");
        assert_eq!(
            s.apply(&Command::Delete {
                path: "/a".into(),
                version: None
            })
            .0,
            Err(StoreError::NotEmpty)
        );
    }

    #[test]
    fn version_checks() {
        let mut s = store_with_session();
        create(&mut s, "/a", CreateMode::Persistent).expect("a");
        assert_eq!(
            s.apply(&Command::SetData {
                path: "/a".into(),
                data: vec![],
                version: Some(3)
            })
            .0,
            Err(StoreError::BadVersion)
        );
        s.apply(&Command::SetData {
            path: "/a".into(),
            data: vec![],
            version: Some(0),
        })
        .0
        .expect("v0 matches");
        assert_eq!(
            s.apply(&Command::Delete {
                path: "/a".into(),
                version: Some(0)
            })
            .0,
            Err(StoreError::BadVersion)
        );
        s.apply(&Command::Delete {
            path: "/a".into(),
            version: Some(1),
        })
        .0
        .expect("v1 matches");
    }

    #[test]
    fn sequential_names_are_monotonic() {
        let mut s = store_with_session();
        create(&mut s, "/q", CreateMode::Persistent).expect("q");
        let a = create(&mut s, "/q/n-", CreateMode::PersistentSequential).expect("n0");
        let b = create(&mut s, "/q/n-", CreateMode::PersistentSequential).expect("n1");
        assert_eq!(a, Applied::Created("/q/n-0000000000".into()));
        assert_eq!(b, Applied::Created("/q/n-0000000001".into()));
    }

    #[test]
    fn ephemerals_die_with_session() {
        let mut s = store_with_session();
        create(&mut s, "/live", CreateMode::Persistent).expect("live");
        create(&mut s, "/live/host-1", CreateMode::Ephemeral).expect("eph");
        let (r, evs) = s.apply(&Command::ExpireSession { id: 1 });
        assert_eq!(r, Ok(Applied::SessionExpired(vec!["/live/host-1".into()])));
        assert!(evs.contains(&WatchEvent::Deleted("/live/host-1".into())));
        assert!(evs.contains(&WatchEvent::ChildrenChanged("/live".into())));
        assert!(s.get("/live/host-1").is_none());
        assert!(s.get("/live").is_some(), "persistent survives");
    }

    #[test]
    fn explicit_delete_of_ephemeral_detaches_from_session() {
        let mut s = store_with_session();
        create(&mut s, "/e", CreateMode::Ephemeral).expect("e");
        s.apply(&Command::Delete {
            path: "/e".into(),
            version: None,
        })
        .0
        .expect("del");
        let (r, _) = s.apply(&Command::ExpireSession { id: 1 });
        assert_eq!(r, Ok(Applied::SessionExpired(vec![]))); // nothing left to remove
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let mut s = store_with_session();
        create(&mut s, "/e", CreateMode::Ephemeral).expect("e");
        assert_eq!(
            create(&mut s, "/e/kid", CreateMode::Persistent),
            Err(StoreError::EphemeralParent)
        );
    }

    #[test]
    fn children_listing() {
        let mut s = store_with_session();
        create(&mut s, "/a", CreateMode::Persistent).expect("a");
        create(&mut s, "/a/x", CreateMode::Persistent).expect("x");
        create(&mut s, "/a/y", CreateMode::Persistent).expect("y");
        create(&mut s, "/a/x/deep", CreateMode::Persistent).expect("deep");
        create(&mut s, "/ab", CreateMode::Persistent).expect("ab is not a child of /a");
        let kids: Vec<&str> = s.children("/a").collect();
        assert_eq!(kids, vec!["x", "y"]);
        let root_kids: Vec<&str> = s.children("/").collect();
        assert_eq!(root_kids, vec!["a", "ab"]);
    }

    #[test]
    fn bad_paths_rejected() {
        let mut s = store_with_session();
        for p in ["", "a", "/a/", "//a", "/"] {
            assert_eq!(
                create(&mut s, p, CreateMode::Persistent),
                Err(StoreError::BadPath),
                "path {p:?}"
            );
        }
    }

    #[test]
    fn unknown_session_rejected() {
        let mut s = ZnodeStore::new();
        assert_eq!(
            s.apply(&Command::Create {
                session: 42,
                path: "/a".into(),
                data: vec![],
                mode: CreateMode::Persistent,
            })
            .0,
            Err(StoreError::NoSession)
        );
        assert_eq!(
            s.apply(&Command::ExpireSession { id: 42 }).0,
            Err(StoreError::NoSession)
        );
    }

    #[test]
    fn create_events_fire() {
        let mut s = store_with_session();
        let (_, evs) = s.apply(&Command::Create {
            session: 1,
            path: "/a".into(),
            data: vec![],
            mode: CreateMode::Persistent,
        });
        assert_eq!(
            evs,
            vec![
                WatchEvent::Created("/a".into()),
                WatchEvent::ChildrenChanged("/".into())
            ]
        );
    }

    #[test]
    fn determinism_identical_command_streams() {
        let cmds = [
            Command::CreateSession { id: 1 },
            Command::Create {
                session: 1,
                path: "/x".into(),
                data: b"1".to_vec(),
                mode: CreateMode::Persistent,
            },
            Command::Create {
                session: 1,
                path: "/x/e-".into(),
                data: vec![],
                mode: CreateMode::EphemeralSequential,
            },
            Command::SetData {
                path: "/x".into(),
                data: b"2".to_vec(),
                version: None,
            },
            Command::ExpireSession { id: 1 },
        ];
        let mut a = ZnodeStore::new();
        let mut b = ZnodeStore::new();
        let ra: Vec<_> = cmds.iter().map(|c| a.apply(c)).collect();
        let rb: Vec<_> = cmds.iter().map(|c| b.apply(c)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.get("/x"), b.get("/x"));
    }
}
