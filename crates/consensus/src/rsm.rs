//! Multi-Paxos replicated state machine serving the znode store.
//!
//! Five of these servers form the coordination cluster the paper co-deploys
//! with the Master (§V-B: "The Master and ZooKeeper are co-deployed in a
//! small cluster (e.g., 5 machines)"). Each log slot is one single-decree
//! Paxos instance ([`crate::paxos`]); a leader elected by out-racing rivals
//! with a higher ballot runs phase 1 once for its whole term and then
//! drives phase 2 per command. Committed commands apply to the
//! [`ZnodeStore`] in slot order on every replica.
//!
//! The leader additionally owns the *service* concerns: client sessions
//! (expiring them through the log so every replica agrees), and watches
//! (notifications pushed to clients when applied commands touch watched
//! paths; clients re-register after a leader change, as real ZooKeeper
//! clients re-sync on reconnect).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_net::{Addr, Network, Responder, RpcNode};
use ustore_sim::{CounterHandle, Sim, SimTime, TraceLevel};

use crate::paxos::{AcceptReply, Acceptor, Ballot, PrepareReply, Proposer};
use crate::store::{Applied, Command, SessionId, StoreError, WatchEvent, ZnodeStore};

/// Cluster timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordConfig {
    /// Leader heartbeat / commit-broadcast interval.
    pub heartbeat_interval: Duration,
    /// Minimum follower election timeout (randomized up to the max).
    pub election_timeout_min: Duration,
    /// Maximum follower election timeout.
    pub election_timeout_max: Duration,
    /// Internal RPC timeout for Paxos messages.
    pub rpc_timeout: Duration,
    /// Client session expiry when no pings arrive.
    pub session_timeout: Duration,
    /// How often the leader sweeps for expired sessions.
    pub session_sweep_interval: Duration,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            heartbeat_interval: Duration::from_millis(50),
            election_timeout_min: Duration::from_millis(150),
            election_timeout_max: Duration::from_millis(300),
            rpc_timeout: Duration::from_millis(100),
            session_timeout: Duration::from_secs(3),
            session_sweep_interval: Duration::from_millis(500),
        }
    }
}

// ---- Wire messages (RPC bodies) ---------------------------------------

#[derive(Clone)]
pub(crate) struct PrepareReq {
    pub ballot: Ballot,
    pub from_slot: u64,
}

#[derive(Clone)]
pub(crate) struct PrepareResp {
    pub from: u32,
    pub ok: bool,
    pub promised: Ballot,
    /// Accepted-but-not-known-chosen entries at or above `from_slot`.
    pub accepted: Vec<(u64, Ballot, Command)>,
    /// Chosen entries at or above `from_slot` the responder knows about.
    pub chosen: Vec<(u64, Command)>,
}

#[derive(Clone)]
pub(crate) struct AcceptReq {
    pub ballot: Ballot,
    pub slot: u64,
    pub cmd: Command,
}

#[derive(Clone)]
pub(crate) struct AcceptResp {
    pub from: u32,
    pub ok: bool,
}

#[derive(Clone)]
pub(crate) struct LearnReq {
    pub ballot: Ballot,
    pub leader: u32,
    pub entries: Vec<(u64, Command)>,
}

#[derive(Clone)]
pub(crate) struct LearnResp {
    /// Slots below this are chosen at the responder.
    pub have_upto: u64,
}

// ---- Client-facing messages --------------------------------------------

/// A read-only query against the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOp {
    /// Fetch data and stat.
    Get(String),
    /// Existence check.
    Exists(String),
    /// Sorted child names.
    Children(String),
}

/// Watch registration accompanying a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchReg {
    /// Client-chosen id echoed back in the notification.
    pub watch_id: u64,
    /// Watch children changes instead of node create/delete/data.
    pub children: bool,
}

/// Results of a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResult {
    /// For [`ReadOp::Get`].
    Data(Option<(Vec<u8>, u64)>),
    /// For [`ReadOp::Exists`].
    Exists(bool),
    /// For [`ReadOp::Children`].
    Children(Vec<String>),
}

#[derive(Clone)]
pub(crate) enum ClientReq {
    Write(Command),
    Read { op: ReadOp, watch: Option<WatchReg> },
    Ping { session: SessionId },
}

#[derive(Clone)]
pub(crate) enum ClientResp {
    /// Not the leader; hints at who might be.
    Redirect(Option<u32>),
    Write(Result<Applied, StoreError>),
    Read(ReadResult),
    Pong,
}

/// Watch notification pushed to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchNotification {
    /// Echo of the registered watch id.
    pub watch_id: u64,
    /// What happened.
    pub event: WatchEvent,
}

// ---- Server -------------------------------------------------------------

enum Role {
    Follower { leader: Option<u32> },
    Candidate { promises: Vec<PrepareResp> },
    Leader,
}

struct WatchEntry {
    watch_id: u64,
    client: Addr,
}

struct S {
    id: u32,
    peers: Vec<Addr>,
    config: CoordConfig,
    paused: bool,
    timer_gen: u64,

    // Paxos state.
    ballot: Ballot, // highest ballot seen/promised
    role: Role,
    acceptors: BTreeMap<u64, Acceptor<Command>>,
    chosen: BTreeMap<u64, Command>,
    applied: u64, // next slot to apply
    store: ZnodeStore,

    // Leader state.
    next_slot: u64,
    proposers: HashMap<u64, Proposer<Command>>,
    pending: HashMap<u64, Responder>,
    peer_have: HashMap<u32, u64>,

    // Service state (leader-owned).
    session_last_heard: HashMap<SessionId, SimTime>,
    data_watches: HashMap<String, Vec<WatchEntry>>,
    child_watches: HashMap<String, Vec<WatchEntry>>,
}

impl S {
    fn quorum(&self) -> usize {
        self.peers.len() / 2 + 1
    }
    fn commit_upto(&self) -> u64 {
        // First gap at or after `applied`.
        let mut upto = self.applied;
        while self.chosen.contains_key(&upto) {
            upto += 1;
        }
        upto
    }
}

/// Per-replica consensus counters, resolved once at construction so the
/// proposal hot path never formats the `coord-{id}` label.
#[derive(Debug, Clone)]
struct CoordMetrics {
    elections: CounterHandle,
    leader_changes: CounterHandle,
    redirects: CounterHandle,
    proposals: CounterHandle,
}

/// One replica of the coordination service.
#[derive(Clone)]
pub struct CoordServer {
    rpc: RpcNode,
    metrics: CoordMetrics,
    inner: Rc<RefCell<S>>,
}

impl fmt::Debug for CoordServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.inner.borrow();
        f.debug_struct("CoordServer")
            .field("id", &s.id)
            .field("ballot", &s.ballot)
            .field(
                "role",
                &match s.role {
                    Role::Follower { .. } => "follower",
                    Role::Candidate { .. } => "candidate",
                    Role::Leader => "leader",
                },
            )
            .field("applied", &s.applied)
            .finish()
    }
}

impl CoordServer {
    /// Creates replica `id` of a cluster whose members live at `peers`
    /// (this replica's address is `peers[id]`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn new(sim: &Sim, net: &Network, id: u32, peers: Vec<Addr>, config: CoordConfig) -> Self {
        assert!((id as usize) < peers.len(), "server id out of range");
        let rpc = RpcNode::new(net, peers[id as usize].clone());
        // Metric component = the replica's address ("coord-3", or
        // "p1-coord-3" for a metadata-partition group), so co-located
        // clusters never merge counters.
        let label = rpc.addr().to_string();
        let metrics = CoordMetrics {
            elections: sim.counter(&label, "consensus.elections"),
            leader_changes: sim.counter(&label, "consensus.leader_changes"),
            redirects: sim.counter(&label, "consensus.redirects"),
            proposals: sim.counter(&label, "consensus.proposals"),
        };
        let server = CoordServer {
            rpc,
            metrics,
            inner: Rc::new(RefCell::new(S {
                id,
                peers,
                config,
                paused: false,
                timer_gen: 0,
                ballot: Ballot::ZERO,
                role: Role::Follower { leader: None },
                acceptors: BTreeMap::new(),
                chosen: BTreeMap::new(),
                applied: 0,
                store: ZnodeStore::new(),
                next_slot: 0,
                proposers: HashMap::new(),
                pending: HashMap::new(),
                peer_have: HashMap::new(),
                session_last_heard: HashMap::new(),
                data_watches: HashMap::new(),
                child_watches: HashMap::new(),
            })),
        };
        server.install_handlers();
        server.arm_election_timer(sim);
        server.arm_session_sweeper(sim);
        server
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.inner.borrow().id
    }

    /// This replica's address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.inner.borrow().role, Role::Leader)
    }

    /// Who this replica believes leads, if anyone.
    pub fn leader_hint(&self) -> Option<u32> {
        let s = self.inner.borrow();
        match &s.role {
            Role::Leader => Some(s.id),
            Role::Follower { leader } => *leader,
            Role::Candidate { .. } => None,
        }
    }

    /// Number of applied log entries.
    pub fn applied_len(&self) -> u64 {
        self.inner.borrow().applied
    }

    /// Runs `f` against the replica's applied store snapshot.
    pub fn with_store<R>(&self, f: impl FnOnce(&ZnodeStore) -> R) -> R {
        f(&self.inner.borrow().store)
    }

    /// The applied command log prefix (for cross-replica safety checks).
    pub fn applied_log(&self) -> Vec<Command> {
        let s = self.inner.borrow();
        (0..s.applied)
            .map(|i| {
                s.chosen
                    .get(&i)
                    .expect("applied entries are chosen")
                    .clone()
            })
            .collect()
    }

    /// Simulates a process crash: the replica ignores everything until
    /// [`CoordServer::restart`]. (Network-level crash should be injected
    /// separately via [`Network::set_down`].)
    pub fn pause(&self) {
        let mut s = self.inner.borrow_mut();
        s.paused = true;
        s.timer_gen += 1;
    }

    /// Restarts a paused replica (durable state intact, volatile leadership
    /// forgotten).
    pub fn restart(&self, sim: &Sim) {
        {
            let mut s = self.inner.borrow_mut();
            s.paused = false;
            s.role = Role::Follower { leader: None };
            s.proposers.clear();
            s.pending.clear();
        }
        self.arm_election_timer(sim);
        self.arm_session_sweeper(sim);
    }

    // ---- Timers ---------------------------------------------------------

    fn arm_election_timer(&self, sim: &Sim) {
        let (gen, delay) = {
            let mut s = self.inner.borrow_mut();
            s.timer_gen += 1;
            let min = s.config.election_timeout_min.as_nanos() as u64;
            let max = s.config.election_timeout_max.as_nanos() as u64;
            let d = sim.with_rng(|r| r.range_u64(min, max.max(min + 1)));
            (s.timer_gen, Duration::from_nanos(d))
        };
        let this = self.clone();
        sim.schedule_in(delay, move |sim| {
            let expired = {
                let s = this.inner.borrow();
                !s.paused && s.timer_gen == gen && !matches!(s.role, Role::Leader)
            };
            if expired {
                this.start_election(sim);
            }
        });
    }

    fn arm_session_sweeper(&self, sim: &Sim) {
        let this = self.clone();
        let interval = self.inner.borrow().config.session_sweep_interval;
        sim.schedule_in(interval, move |sim| {
            {
                let s = this.inner.borrow();
                if s.paused {
                    return; // resumed by restart()
                }
            }
            this.sweep_sessions(sim);
            this.arm_session_sweeper(sim);
        });
    }

    fn sweep_sessions(&self, sim: &Sim) {
        let expired: Vec<SessionId> = {
            let s = self.inner.borrow();
            if !matches!(s.role, Role::Leader) {
                return;
            }
            let deadline = s.config.session_timeout;
            s.store
                .session_ids()
                .into_iter()
                .filter(|id| {
                    s.session_last_heard
                        .get(id)
                        .is_none_or(|t| sim.now().saturating_duration_since(*t) > deadline)
                })
                .collect()
        };
        for id in expired {
            sim.trace(
                TraceLevel::Warn,
                "coord",
                format!("leader {} expiring session {id}", self.id()),
            );
            self.propose_internal(sim, Command::ExpireSession { id }, None);
        }
    }

    // ---- Election ---------------------------------------------------------

    fn start_election(&self, sim: &Sim) {
        let (ballot, from_slot, peers, me) = {
            let mut s = self.inner.borrow_mut();
            let ballot = s.ballot.next_for(s.id);
            s.ballot = ballot;
            s.role = Role::Candidate {
                promises: Vec::new(),
            };
            (ballot, s.applied, s.peers.clone(), s.id)
        };
        self.metrics.elections.inc();
        sim.trace(
            TraceLevel::Info,
            "coord",
            format!("{me} starts election at ballot {ballot}"),
        );
        let req = PrepareReq { ballot, from_slot };
        let timeout = self.inner.borrow().config.rpc_timeout;
        for (pid, addr) in peers.iter().enumerate() {
            let this = self.clone();
            self.rpc.call::<PrepareResp>(
                sim,
                addr,
                "paxos.prepare",
                Arc::new(req.clone()),
                128,
                timeout,
                move |sim, resp| {
                    let _ = pid;
                    if let Ok(r) = resp {
                        this.on_prepare_resp(sim, ballot, (*r).clone());
                    }
                },
            );
        }
        // If the election stalls, the timer fires again with a higher ballot.
        self.arm_election_timer(sim);
    }

    fn on_prepare_resp(&self, sim: &Sim, ballot: Ballot, resp: PrepareResp) {
        let won = {
            let mut s = self.inner.borrow_mut();
            if s.paused || s.ballot != ballot {
                return;
            }
            let Role::Candidate { promises } = &mut s.role else {
                return;
            };
            if !resp.ok {
                // Someone promised higher; adopt and fall back.
                if resp.promised > s.ballot {
                    s.ballot = resp.promised;
                }
                s.role = Role::Follower { leader: None };
                return;
            }
            if promises.iter().any(|p| p.from == resp.from) {
                return;
            }
            promises.push(resp);
            promises.len() >= s.quorum()
        };
        if won {
            self.become_leader(sim, ballot);
        }
    }

    fn become_leader(&self, sim: &Sim, ballot: Ballot) {
        let reproposals: Vec<(u64, Command)> = {
            let mut s = self.inner.borrow_mut();
            let Role::Candidate { promises } = &mut s.role else {
                return;
            };
            let promises = std::mem::take(promises);
            // Merge everything learned during the election.
            let mut best_accepted: BTreeMap<u64, (Ballot, Command)> = BTreeMap::new();
            for p in &promises {
                for (slot, cmd) in &p.chosen {
                    s.chosen.entry(*slot).or_insert_with(|| cmd.clone());
                }
                for (slot, b, cmd) in &p.accepted {
                    match best_accepted.get(slot) {
                        Some((bb, _)) if bb >= b => {}
                        _ => {
                            best_accepted.insert(*slot, (*b, cmd.clone()));
                        }
                    }
                }
            }
            s.role = Role::Leader;
            s.timer_gen += 1; // stop follower timer
            let max_seen = best_accepted
                .keys()
                .last()
                .copied()
                .max(s.chosen.keys().last().copied());
            s.next_slot = max_seen.map_or(s.applied, |m| m + 1).max(s.applied);
            // Re-propose accepted-but-unchosen values, and no-ops for gaps.
            let mut todo = Vec::new();
            for slot in s.applied..s.next_slot {
                if s.chosen.contains_key(&slot) {
                    continue;
                }
                let cmd = best_accepted
                    .get(&slot)
                    .map(|(_, c)| c.clone())
                    .unwrap_or(Command::Noop);
                todo.push((slot, cmd));
            }
            // Fresh leader: give all sessions a grace period.
            let now = sim.now();
            let ids = s.store.session_ids();
            for id in ids {
                s.session_last_heard.insert(id, now);
            }
            s.peer_have.clear();
            todo
        };
        self.metrics.leader_changes.inc();
        sim.trace(
            TraceLevel::Info,
            "coord",
            format!("{} became leader at {ballot}", self.id()),
        );
        for (slot, cmd) in reproposals {
            self.send_accepts(sim, ballot, slot, cmd, None);
        }
        self.apply_ready(sim);
        self.arm_heartbeat(sim);
    }

    fn arm_heartbeat(&self, sim: &Sim) {
        let interval = self.inner.borrow().config.heartbeat_interval;
        let this = self.clone();
        sim.schedule_in(interval, move |sim| {
            let go = {
                let s = this.inner.borrow();
                !s.paused && matches!(s.role, Role::Leader)
            };
            if go {
                this.broadcast_learn(sim);
                this.arm_heartbeat(sim);
            }
        });
    }

    fn broadcast_learn(&self, sim: &Sim) {
        let (ballot, me, peers, per_peer): (Ballot, u32, Vec<Addr>, Vec<Vec<(u64, Command)>>) = {
            let s = self.inner.borrow();
            let commit = s.commit_upto();
            let per_peer = s
                .peers
                .iter()
                .enumerate()
                .map(|(pid, _)| {
                    let have = s.peer_have.get(&(pid as u32)).copied().unwrap_or(0);
                    s.chosen
                        .range(have..commit)
                        .map(|(k, v)| (*k, v.clone()))
                        .collect()
                })
                .collect();
            (s.ballot, s.id, s.peers.clone(), per_peer)
        };
        let timeout = self.inner.borrow().config.rpc_timeout;
        for (pid, addr) in peers.iter().enumerate() {
            if pid as u32 == me {
                continue;
            }
            let req = LearnReq {
                ballot,
                leader: me,
                entries: per_peer[pid].clone(),
            };
            let this = self.clone();
            let pid = pid as u32;
            self.rpc.call::<LearnResp>(
                sim,
                addr,
                "paxos.learn",
                Arc::new(req),
                256,
                timeout,
                move |_sim, resp| {
                    if let Ok(r) = resp {
                        let mut s = this.inner.borrow_mut();
                        let e = s.peer_have.entry(pid).or_insert(0);
                        *e = (*e).max(r.have_upto);
                    }
                },
            );
        }
    }

    // ---- Proposing --------------------------------------------------------

    /// Proposes a command on the replicated log (leader only). The optional
    /// responder is answered with the apply result once committed.
    fn propose_internal(&self, sim: &Sim, cmd: Command, responder: Option<Responder>) {
        let (ballot, slot) = {
            let mut s = self.inner.borrow_mut();
            if !matches!(s.role, Role::Leader) {
                drop(s);
                self.metrics.redirects.inc();
                if let Some(r) = responder {
                    let hint = self.leader_hint();
                    r.reply(sim, Arc::new(ClientResp::Redirect(hint)), 16);
                }
                return;
            }
            let slot = s.next_slot;
            s.next_slot += 1;
            (s.ballot, slot)
        };
        self.metrics.proposals.inc();
        if let Some(r) = responder {
            self.inner.borrow_mut().pending.insert(slot, r);
        }
        self.send_accepts(sim, ballot, slot, cmd, None);
    }

    fn send_accepts(&self, sim: &Sim, ballot: Ballot, slot: u64, cmd: Command, _: Option<()>) {
        {
            let mut s = self.inner.borrow_mut();
            let quorum = s.quorum();
            s.proposers.insert(slot, Proposer::new(ballot, quorum));
            if let Some(p) = s.proposers.get_mut(&slot) {
                p.choose_value(cmd.clone());
            }
        }
        let (peers, timeout) = {
            let s = self.inner.borrow();
            (s.peers.clone(), s.config.rpc_timeout)
        };
        let req = AcceptReq { ballot, slot, cmd };
        for addr in &peers {
            let this = self.clone();
            self.rpc.call::<AcceptResp>(
                sim,
                addr,
                "paxos.accept",
                Arc::new(req.clone()),
                256,
                timeout,
                move |sim, resp| {
                    if let Ok(r) = resp {
                        this.on_accept_resp(sim, ballot, slot, (*r).clone());
                    }
                },
            );
        }
    }

    fn on_accept_resp(&self, sim: &Sim, ballot: Ballot, slot: u64, resp: AcceptResp) {
        let chosen_now = {
            let mut s = self.inner.borrow_mut();
            if s.paused || s.ballot != ballot || !matches!(s.role, Role::Leader) {
                return;
            }
            if !resp.ok {
                // A higher ballot exists somewhere: step down.
                s.role = Role::Follower { leader: None };
                s.proposers.clear();
                drop(s);
                self.fail_pending(sim);
                self.arm_election_timer(sim);
                return;
            }
            let Some(p) = s.proposers.get_mut(&slot) else {
                return;
            };
            if p.on_accepted(resp.from) {
                let cmd = p.value().expect("phase 2 value").clone();
                s.chosen.insert(slot, cmd);
                s.proposers.remove(&slot);
                true
            } else {
                false
            }
        };
        if chosen_now {
            self.apply_ready(sim);
            self.broadcast_learn(sim);
        }
    }

    fn fail_pending(&self, sim: &Sim) {
        let pending: Vec<Responder> = {
            let mut s = self.inner.borrow_mut();
            s.pending.drain().map(|(_, r)| r).collect()
        };
        for r in pending {
            r.reply(sim, Arc::new(ClientResp::Redirect(None)), 16);
        }
    }

    // ---- Applying -----------------------------------------------------------

    fn apply_ready(&self, sim: &Sim) {
        loop {
            let step = {
                let mut s = self.inner.borrow_mut();
                let slot = s.applied;
                let Some(cmd) = s.chosen.get(&slot).cloned() else {
                    break;
                };
                let (result, events) = s.store.apply(&cmd);
                s.applied += 1;
                let responder = s.pending.remove(&slot);
                // Track new sessions for expiry on the leader.
                if let Command::CreateSession { id } = cmd {
                    let now = sim.now();
                    s.session_last_heard.insert(id, now);
                }
                (result, events, responder)
            };
            let (result, events, responder) = step;
            if let Some(r) = responder {
                r.reply(sim, Arc::new(ClientResp::Write(result)), 64);
            }
            self.fire_watches(sim, &events);
        }
    }

    fn fire_watches(&self, sim: &Sim, events: &[WatchEvent]) {
        let mut to_send: Vec<(Addr, WatchNotification)> = Vec::new();
        {
            let mut s = self.inner.borrow_mut();
            if !matches!(s.role, Role::Leader) {
                return;
            }
            for ev in events {
                let (map, path) = match ev {
                    WatchEvent::ChildrenChanged(p) => (&mut s.child_watches, p.clone()),
                    other => (&mut s.data_watches, other.path().to_owned()),
                };
                if let Some(entries) = map.remove(&path) {
                    for e in entries {
                        to_send.push((
                            e.client,
                            WatchNotification {
                                watch_id: e.watch_id,
                                event: ev.clone(),
                            },
                        ));
                    }
                }
            }
        }
        let timeout = self.inner.borrow().config.rpc_timeout;
        for (client, notif) in to_send {
            self.rpc.call::<()>(
                sim,
                &client,
                "coord.event",
                Arc::new(notif),
                64,
                timeout,
                |_, _| {},
            );
        }
    }

    // ---- RPC handlers --------------------------------------------------------

    fn install_handlers(&self) {
        let this = self.clone();
        self.rpc.serve("paxos.prepare", move |sim, req, responder| {
            let req: &PrepareReq = req.downcast_ref().expect("PrepareReq");
            let resp = this.handle_prepare(sim, req);
            if let Some(resp) = resp {
                responder.reply(sim, Arc::new(resp), 256);
            }
        });
        let this = self.clone();
        self.rpc.serve("paxos.accept", move |sim, req, responder| {
            let req: &AcceptReq = req.downcast_ref().expect("AcceptReq");
            if let Some(resp) = this.handle_accept(sim, req) {
                responder.reply(sim, Arc::new(resp), 64);
            }
        });
        let this = self.clone();
        self.rpc.serve("paxos.learn", move |sim, req, responder| {
            let req: &LearnReq = req.downcast_ref().expect("LearnReq");
            if let Some(resp) = this.handle_learn(sim, req) {
                responder.reply(sim, Arc::new(resp), 64);
            }
        });
        let this = self.clone();
        self.rpc.serve("coord.request", move |sim, req, responder| {
            let req: &ClientReq = req.downcast_ref().expect("ClientReq");
            this.handle_client(sim, req.clone(), responder);
        });
    }

    fn handle_prepare(&self, _sim: &Sim, req: &PrepareReq) -> Option<PrepareResp> {
        let mut s = self.inner.borrow_mut();
        if s.paused {
            return None;
        }
        let me = s.id;
        if req.ballot < s.ballot {
            return Some(PrepareResp {
                from: me,
                ok: false,
                promised: s.ballot,
                accepted: Vec::new(),
                chosen: Vec::new(),
            });
        }
        s.ballot = req.ballot;
        if req.ballot.node != me {
            s.role = Role::Follower { leader: None };
            s.proposers.clear();
        }
        // Promise on every slot >= from_slot (a term-wide phase 1).
        let mut accepted = Vec::new();
        for (slot, acc) in s.acceptors.range_mut(req.from_slot..) {
            match acc.on_prepare(req.ballot) {
                PrepareReply::Promised {
                    accepted: Some((b, v)),
                    ..
                } => {
                    accepted.push((*slot, b, v));
                }
                PrepareReply::Promised { .. } => {}
                PrepareReply::Rejected { .. } => unreachable!("ballot >= promised"),
            }
        }
        let chosen = s
            .chosen
            .range(req.from_slot..)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        Some(PrepareResp {
            from: me,
            ok: true,
            promised: req.ballot,
            accepted,
            chosen,
        })
    }

    fn handle_accept(&self, sim: &Sim, req: &AcceptReq) -> Option<AcceptResp> {
        let mut s = self.inner.borrow_mut();
        if s.paused {
            return None;
        }
        let me = s.id;
        if req.ballot < s.ballot {
            return Some(AcceptResp {
                from: me,
                ok: false,
            });
        }
        s.ballot = req.ballot;
        if req.ballot.node != me {
            s.role = Role::Follower {
                leader: Some(req.ballot.node),
            };
            s.timer_gen += 1;
            drop(s);
            self.arm_election_timer(sim);
            s = self.inner.borrow_mut();
        }
        let reply = s
            .acceptors
            .entry(req.slot)
            .or_insert_with(Acceptor::new)
            .on_accept(req.ballot, req.cmd.clone());
        Some(AcceptResp {
            from: me,
            ok: matches!(reply, AcceptReply::Accepted { .. }),
        })
    }

    fn handle_learn(&self, sim: &Sim, req: &LearnReq) -> Option<LearnResp> {
        {
            let mut s = self.inner.borrow_mut();
            if s.paused {
                return None;
            }
            if req.ballot < s.ballot {
                let have = s.commit_upto();
                return Some(LearnResp { have_upto: have });
            }
            s.ballot = req.ballot;
            if req.leader != s.id {
                s.role = Role::Follower {
                    leader: Some(req.leader),
                };
                s.timer_gen += 1;
            }
            for (slot, cmd) in &req.entries {
                s.chosen.entry(*slot).or_insert_with(|| cmd.clone());
            }
        }
        self.arm_election_timer(sim);
        self.apply_ready(sim);
        let s = self.inner.borrow();
        Some(LearnResp {
            have_upto: s.commit_upto(),
        })
    }

    fn handle_client(&self, sim: &Sim, req: ClientReq, responder: Responder) {
        let is_leader = {
            let s = self.inner.borrow();
            if s.paused {
                return;
            }
            matches!(s.role, Role::Leader)
        };
        if !is_leader {
            let hint = self.leader_hint();
            responder.reply(sim, Arc::new(ClientResp::Redirect(hint)), 16);
            return;
        }
        match req {
            ClientReq::Write(cmd) => {
                // Any client activity refreshes its session.
                if let Command::Create { session, .. } = &cmd {
                    let now = sim.now();
                    self.inner
                        .borrow_mut()
                        .session_last_heard
                        .insert(*session, now);
                }
                self.propose_internal(sim, cmd, Some(responder));
            }
            ClientReq::Ping { session } => {
                let now = sim.now();
                self.inner
                    .borrow_mut()
                    .session_last_heard
                    .insert(session, now);
                responder.reply(sim, Arc::new(ClientResp::Pong), 8);
            }
            ClientReq::Read { op, watch } => {
                let peer = responder.peer().clone();
                let result = {
                    let mut s = self.inner.borrow_mut();
                    let result = match &op {
                        ReadOp::Get(p) => {
                            ReadResult::Data(s.store.get(p).map(|(d, stat)| (d, stat.version)))
                        }
                        ReadOp::Exists(p) => ReadResult::Exists(s.store.exists(p)),
                        ReadOp::Children(p) => {
                            ReadResult::Children(s.store.children(p).map(str::to_owned).collect())
                        }
                    };
                    if let Some(w) = watch {
                        let path = match &op {
                            ReadOp::Get(p) | ReadOp::Exists(p) | ReadOp::Children(p) => p.clone(),
                        };
                        let entry = WatchEntry {
                            watch_id: w.watch_id,
                            client: peer,
                        };
                        if w.children {
                            s.child_watches.entry(path).or_default().push(entry);
                        } else {
                            s.data_watches.entry(path).or_default().push(entry);
                        }
                    }
                    result
                };
                responder.reply(sim, Arc::new(ClientResp::Read(result)), 128);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CreateMode;
    use std::cell::Cell;
    use ustore_net::NetConfig;

    fn cluster(sim: &Sim, n: usize) -> (Network, Vec<CoordServer>) {
        let net = Network::new(NetConfig::default());
        let addrs: Vec<Addr> = (0..n).map(|i| Addr::new(format!("coord-{i}"))).collect();
        let servers = (0..n)
            .map(|i| CoordServer::new(sim, &net, i as u32, addrs.clone(), CoordConfig::default()))
            .collect();
        (net, servers)
    }

    fn leader(servers: &[CoordServer]) -> Option<&CoordServer> {
        let mut leaders: Vec<&CoordServer> = servers.iter().filter(|s| s.is_leader()).collect();
        (leaders.len() == 1).then(|| leaders.remove(0))
    }

    #[test]
    fn exactly_one_leader_emerges() {
        let sim = Sim::new(11);
        let (_net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(3));
        let l = leader(&servers);
        assert!(l.is_some(), "one leader expected");
        // Everyone agrees on who it is.
        let lid = l.expect("leader").id();
        for s in &servers {
            assert_eq!(s.leader_hint(), Some(lid), "server {} hint", s.id());
        }
    }

    fn propose_ok(sim: &Sim, s: &CoordServer, cmd: Command) {
        s.propose_internal(sim, cmd, None);
    }

    #[test]
    fn committed_commands_apply_everywhere() {
        let sim = Sim::new(12);
        let (_net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let l = leader(&servers).expect("leader").clone();
        propose_ok(&sim, &l, Command::CreateSession { id: 7 });
        propose_ok(
            &sim,
            &l,
            Command::Create {
                session: 7,
                path: "/units".into(),
                data: b"16 disks".to_vec(),
                mode: CreateMode::Persistent,
            },
        );
        sim.run_until(SimTime::from_secs(4));
        for s in &servers {
            assert!(
                s.with_store(|st| st.get("/units").is_some()),
                "replica {} applied",
                s.id()
            );
        }
    }

    #[test]
    fn logs_are_consistent_prefixes() {
        let sim = Sim::new(13);
        let (_net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let l = leader(&servers).expect("leader").clone();
        propose_ok(&sim, &l, Command::CreateSession { id: 1 });
        for k in 0..10 {
            propose_ok(
                &sim,
                &l,
                Command::Create {
                    session: 1,
                    path: format!("/n{k}"),
                    data: vec![],
                    mode: CreateMode::Persistent,
                },
            );
        }
        sim.run_until(SimTime::from_secs(4));
        let logs: Vec<Vec<Command>> = servers.iter().map(|s| s.applied_log()).collect();
        let longest = logs.iter().map(Vec::len).max().expect("logs");
        assert!(longest >= 11);
        for log in &logs {
            assert_eq!(
                &logs[0][..log.len().min(logs[0].len())],
                &log[..log.len().min(logs[0].len())]
            );
        }
    }

    #[test]
    fn leader_crash_elects_new_leader_and_preserves_log() {
        let sim = Sim::new(14);
        let (net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let old = leader(&servers).expect("leader").clone();
        propose_ok(&sim, &old, Command::CreateSession { id: 1 });
        propose_ok(
            &sim,
            &old,
            Command::Create {
                session: 1,
                path: "/durable".into(),
                data: vec![],
                mode: CreateMode::Persistent,
            },
        );
        sim.run_until(SimTime::from_secs(3));
        // Crash the leader (process + network).
        old.pause();
        net.set_down(&sim, &old.addr());
        sim.run_until(SimTime::from_secs(6));
        let survivors: Vec<&CoordServer> = servers.iter().filter(|s| s.id() != old.id()).collect();
        let new_leaders: Vec<&&CoordServer> = survivors.iter().filter(|s| s.is_leader()).collect();
        assert_eq!(new_leaders.len(), 1, "new leader among survivors");
        let nl = new_leaders[0];
        assert_ne!(nl.id(), old.id());
        assert!(
            nl.with_store(|st| st.get("/durable").is_some()),
            "log preserved"
        );
    }

    #[test]
    fn partitioned_leader_steps_down_on_heal() {
        let sim = Sim::new(15);
        let (net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let old = leader(&servers).expect("leader").clone();
        // Cut the old leader off from everyone.
        for s in &servers {
            if s.id() != old.id() {
                net.partition(&old.addr(), &s.addr());
            }
        }
        sim.run_until(SimTime::from_secs(6));
        let majority_leader: Vec<&CoordServer> = servers
            .iter()
            .filter(|s| s.id() != old.id() && s.is_leader())
            .collect();
        assert_eq!(majority_leader.len(), 1, "majority side elected a leader");
        net.heal();
        sim.run_until(SimTime::from_secs(10));
        // Exactly one leader overall after healing.
        let l: Vec<&CoordServer> = servers.iter().filter(|s| s.is_leader()).collect();
        assert_eq!(l.len(), 1, "single leader after heal");
    }

    #[test]
    fn paused_replica_catches_up_after_restart() {
        let sim = Sim::new(16);
        let (_net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let l = leader(&servers).expect("leader").clone();
        let bystander = servers
            .iter()
            .find(|s| !s.is_leader())
            .expect("follower")
            .clone();
        bystander.pause();
        propose_ok(&sim, &l, Command::CreateSession { id: 3 });
        propose_ok(
            &sim,
            &l,
            Command::Create {
                session: 3,
                path: "/late".into(),
                data: vec![],
                mode: CreateMode::Persistent,
            },
        );
        sim.run_until(SimTime::from_secs(4));
        assert!(bystander.with_store(|st| st.get("/late").is_none()));
        bystander.restart(&sim);
        sim.run_until(SimTime::from_secs(8));
        assert!(
            bystander.with_store(|st| st.get("/late").is_some()),
            "caught up after restart"
        );
    }

    #[test]
    fn minority_cannot_commit() {
        let sim = Sim::new(17);
        let (net, servers) = cluster(&sim, 5);
        sim.run_until(SimTime::from_secs(2));
        let l = leader(&servers).expect("leader").clone();
        // Partition the leader with just one peer (minority of 2).
        let mut kept = 0;
        for s in &servers {
            if s.id() != l.id() {
                if kept < 1 {
                    kept += 1;
                    continue;
                }
                net.partition(&l.addr(), &s.addr());
            }
        }
        // Give the majority side time to elect; then the old leader proposes.
        sim.run_until(SimTime::from_secs(4));
        let done = Rc::new(Cell::new(false));
        propose_ok(&sim, &l, Command::CreateSession { id: 99 });
        let _ = done;
        sim.run_until(SimTime::from_secs(6));
        // The command must not be applied on the majority side.
        for s in &servers {
            if s.id() != l.id() && s.is_leader() {
                assert!(
                    s.with_store(|st| !st.has_session(99)),
                    "minority proposal must not commit on majority"
                );
            }
        }
    }
}
