//! Identifiers and the global storage namespace.
//!
//! Allocated storage spaces are named `</DeployUnitID/DiskID/SpaceID>`
//! (§IV-A), uniquely identifying each piece across the whole UStore
//! deployment.

use std::fmt;
use std::str::FromStr;

use ustore_fabric::DiskId;

/// A deploy unit (one enclosure of disks + fabric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit{}", self.0)
    }
}

/// The global name of one allocated storage space.
///
/// # Examples
///
/// ```
/// use ustore::SpaceName;
/// use ustore::UnitId;
/// use ustore_fabric::DiskId;
///
/// let n = SpaceName::new(UnitId(0), DiskId(5), 2);
/// assert_eq!(n.to_string(), "/0/5/2");
/// assert_eq!("/0/5/2".parse::<SpaceName>().expect("parse"), n);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpaceName {
    /// The deploy unit holding the disk.
    pub unit: UnitId,
    /// The disk inside the unit.
    pub disk: DiskId,
    /// The space index on the disk.
    pub space: u32,
}

impl SpaceName {
    /// Creates a space name.
    pub fn new(unit: UnitId, disk: DiskId, space: u32) -> Self {
        SpaceName { unit, disk, space }
    }

    /// The iSCSI target name this space is exposed under.
    pub fn target_name(&self) -> String {
        format!("ustore:{}.{}.{}", self.unit.0, self.disk.0, self.space)
    }
}

impl fmt::Display for SpaceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/{}/{}", self.unit.0, self.disk.0, self.space)
    }
}

/// Error parsing a [`SpaceName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpaceNameError;

impl fmt::Display for ParseSpaceNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space names look like /<unit>/<disk>/<space>")
    }
}

impl std::error::Error for ParseSpaceNameError {}

impl FromStr for SpaceName {
    type Err = ParseSpaceNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s
            .strip_prefix('/')
            .ok_or(ParseSpaceNameError)?
            .split('/')
            .collect();
        if parts.len() != 3 {
            return Err(ParseSpaceNameError);
        }
        let unit = parts[0].parse().map_err(|_| ParseSpaceNameError)?;
        let disk = parts[1].parse().map_err(|_| ParseSpaceNameError)?;
        let space = parts[2].parse().map_err(|_| ParseSpaceNameError)?;
        Ok(SpaceName::new(UnitId(unit), DiskId(disk), space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let n = SpaceName::new(UnitId(3), DiskId(14), 7);
        assert_eq!(n.to_string(), "/3/14/7");
        assert_eq!(n.to_string().parse::<SpaceName>(), Ok(n));
        assert_eq!(n.target_name(), "ustore:3.14.7");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "3/14/7", "/3/14", "/3/14/7/1", "/a/b/c", "/3//7"] {
            assert!(bad.parse::<SpaceName>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn ordering_is_by_unit_disk_space() {
        let a = SpaceName::new(UnitId(0), DiskId(1), 5);
        let b = SpaceName::new(UnitId(0), DiskId(2), 0);
        assert!(a < b);
    }
}
