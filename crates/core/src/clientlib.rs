//! The UStore ClientLib (§IV-D).
//!
//! The client library abstracts away disk–host connectivity and exposes
//! allocated spaces as block devices. It provides storage-management APIs
//! (allocate, release, directory lookup), mounts targets over the
//! iSCSI-style protocol, and — crucially for failover — **remounts
//! automatically**: when a mounted space becomes unreachable, pending IO
//! is queued, the Master is re-queried for the space's new host, the
//! session is re-established, and the queue drains. From the upper
//! layer's view there is only "a temporary high latency accessing local
//! disks".

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_fabric::DiskId;
use ustore_net::{Addr, BlockDevice, BlockError, IscsiSession, Network, ReadCb, RpcNode, WriteCb};
use ustore_sim::{FastMap, ReqKind, Sim, SimTime, SpanId, TraceId, TraceLevel};

use crate::ids::SpaceName;
use crate::messages::{
    AllocateReq, DiskPowerReq, EndpointAck, LookupReq, MasterError, ReleaseReq, SpaceInfo,
};

/// ClientLib tunables.
#[derive(Debug, Clone)]
pub struct ClientLibConfig {
    /// RPC timeout to the Master.
    pub master_timeout: Duration,
    /// Attempts across master processes before failing an operation.
    pub master_attempts: u32,
    /// Backoff between master retries.
    pub master_backoff: Duration,
    /// IO timeout on a mounted session (detects dead hosts).
    pub io_timeout: Duration,
    /// Delay after an iSCSI login before the device is usable (device
    /// scan — Figure 6 part 3).
    pub mount_settle: Duration,
    /// Backoff between remount attempts.
    pub remount_backoff: Duration,
    /// Give up remounting after this long and fail queued IO.
    pub remount_deadline: Duration,
    /// Location-lease duration: when `Some`, resolved space locations are
    /// cached and served locally until the lease expires, keeping the
    /// Master off the lookup path. IO failures, releases and vanished
    /// spaces invalidate the cached entry immediately, so a stale lease
    /// never routes IO past the first error. `None` (the default)
    /// preserves the uncached, always-ask-the-Master behavior bit for bit.
    pub location_lease: Option<Duration>,
}

impl Default for ClientLibConfig {
    fn default() -> Self {
        ClientLibConfig {
            master_timeout: Duration::from_millis(600),
            master_attempts: 12,
            master_backoff: Duration::from_millis(250),
            io_timeout: Duration::from_millis(800),
            mount_settle: Duration::from_millis(1000),
            remount_backoff: Duration::from_millis(300),
            remount_deadline: Duration::from_secs(60),
            location_lease: None,
        }
    }
}

/// Client-visible errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientLibError {
    /// No master answered within the retry budget.
    MasterUnreachable,
    /// The master rejected the request.
    Master(MasterError),
    /// The space could not be (re)mounted before the deadline.
    MountFailed(String),
}

impl fmt::Display for ClientLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientLibError::MasterUnreachable => write!(f, "no master reachable"),
            ClientLibError::Master(e) => write!(f, "master: {e}"),
            ClientLibError::MountFailed(w) => write!(f, "mount failed: {w}"),
        }
    }
}

impl std::error::Error for ClientLibError {}

/// The UStore client library, bound to one network address.
#[derive(Clone)]
pub struct UStoreClient {
    rpc: RpcNode,
    masters: Vec<Addr>,
    hint: Rc<RefCell<usize>>,
    config: ClientLibConfig,
    /// Location-lease cache: resolved space → (info, lease expiry).
    /// Only populated when `config.location_lease` is set.
    leases: Rc<RefCell<FastMap<SpaceName, (SpaceInfo, SimTime)>>>,
}

impl fmt::Debug for UStoreClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UStoreClient")
            .field("addr", self.rpc.addr())
            .finish()
    }
}

impl UStoreClient {
    /// Creates a client at `addr` talking to the given master processes.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is empty.
    pub fn new(net: &Network, addr: Addr, masters: Vec<Addr>, config: ClientLibConfig) -> Self {
        assert!(!masters.is_empty(), "need at least one master address");
        UStoreClient {
            rpc: RpcNode::new(net, addr),
            masters,
            hint: Rc::new(RefCell::new(0)),
            config,
            leases: Rc::new(RefCell::new(FastMap::default())),
        }
    }

    /// The client's network address (useful as a locality hint).
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    fn master_call<T: std::any::Any + Send + Sync + Clone>(
        &self,
        sim: &Sim,
        method: &'static str,
        body: ustore_net::Payload,
        cb: impl FnOnce(&Sim, Result<T, ClientLibError>) + 'static,
    ) {
        let attempts = self.config.master_attempts;
        self.master_call_attempt(sim, method, body, attempts, Box::new(cb));
    }

    fn master_call_attempt<T: std::any::Any + Send + Sync + Clone>(
        &self,
        sim: &Sim,
        method: &'static str,
        body: ustore_net::Payload,
        attempts: u32,
        cb: Box<dyn FnOnce(&Sim, Result<T, ClientLibError>)>,
    ) {
        if attempts == 0 {
            cb(sim, Err(ClientLibError::MasterUnreachable));
            return;
        }
        let target = self.masters[*self.hint.borrow() % self.masters.len()].clone();
        let this = self.clone();
        let body2 = body.clone();
        self.rpc.call::<T>(
            sim,
            &target,
            method,
            body,
            128,
            self.config.master_timeout,
            move |sim, r| match r {
                Ok(resp) => cb(sim, Ok((*resp).clone())),
                Err(_) => {
                    *this.hint.borrow_mut() += 1;
                    let backoff = this.config.master_backoff;
                    let this2 = this.clone();
                    sim.schedule_in(backoff, move |sim| {
                        this2.master_call_attempt(sim, method, body2, attempts - 1, cb);
                    });
                }
            },
        );
    }

    /// Dispatch helper that retries `NotActive` responses on the other
    /// master (with a bounded budget — a standby answering instantly must
    /// not reset the overall retry loop forever).
    fn master_result<T: std::any::Any + Send + Sync + Clone>(
        &self,
        sim: &Sim,
        method: &'static str,
        body: ustore_net::Payload,
        cb: impl FnOnce(&Sim, Result<T, ClientLibError>) + 'static,
    ) where
        Result<T, MasterError>: Clone,
    {
        let rounds = self.config.master_attempts;
        self.master_result_attempt(sim, method, body, rounds, Box::new(cb));
    }

    fn master_result_attempt<T: std::any::Any + Send + Sync + Clone>(
        &self,
        sim: &Sim,
        method: &'static str,
        body: ustore_net::Payload,
        rounds_left: u32,
        cb: Box<dyn FnOnce(&Sim, Result<T, ClientLibError>)>,
    ) where
        Result<T, MasterError>: Clone,
    {
        if rounds_left == 0 {
            cb(sim, Err(ClientLibError::MasterUnreachable));
            return;
        }
        let this = self.clone();
        let body2 = body.clone();
        self.master_call::<Result<T, MasterError>>(sim, method, body, move |sim, r| match r {
            Err(e) => cb(sim, Err(e)),
            Ok(Ok(v)) => cb(sim, Ok(v)),
            Ok(Err(MasterError::NotActive)) => {
                *this.hint.borrow_mut() += 1;
                let backoff = this.config.master_backoff;
                let this2 = this.clone();
                sim.schedule_in(backoff, move |sim| {
                    this2.master_result_attempt(sim, method, body2, rounds_left - 1, cb);
                });
            }
            Ok(Err(e)) => cb(sim, Err(ClientLibError::Master(e))),
        });
    }

    /// Requests `size` bytes for `service` (with this client as the
    /// locality hint).
    pub fn allocate(
        &self,
        sim: &Sim,
        service: impl Into<String>,
        size: u64,
        cb: impl FnOnce(&Sim, Result<SpaceInfo, ClientLibError>) + 'static,
    ) {
        let req = AllocateReq {
            service: service.into(),
            size,
            near: Some(self.addr()),
        };
        self.master_result::<SpaceInfo>(sim, "master.allocate", Arc::new(req), cb);
    }

    /// Directory lookup: where does this space live right now?
    ///
    /// With a location lease configured, a still-valid cached answer is
    /// served locally (synchronously — the Master never sees the
    /// request); otherwise the Master is asked and a resolved location
    /// (one with a live host) is cached under a fresh lease.
    pub fn lookup(
        &self,
        sim: &Sim,
        name: SpaceName,
        cb: impl FnOnce(&Sim, Result<SpaceInfo, ClientLibError>) + 'static,
    ) {
        let Some(lease) = self.config.location_lease else {
            self.master_result::<SpaceInfo>(sim, "master.lookup", Arc::new(LookupReq { name }), cb);
            return;
        };
        let cached = self
            .leases
            .borrow()
            .get(&name)
            .filter(|(_, expires)| sim.now() < *expires)
            .map(|(info, _)| info.clone());
        let tracer = sim.reqtracer();
        if let Some(info) = cached {
            tracer.note_lease(true);
            tracer.note_master_lookup(Duration::ZERO);
            cb(sim, Ok(info));
            return;
        }
        self.leases.borrow_mut().remove(&name);
        tracer.note_lease(false);
        let leases = self.leases.clone();
        let asked = sim.now();
        self.master_result::<SpaceInfo>(
            sim,
            "master.lookup",
            Arc::new(LookupReq { name }),
            move |sim, r| {
                sim.reqtracer()
                    .note_master_lookup(sim.now().duration_since(asked));
                if let Ok(info) = &r {
                    if info.host_addr.is_some() {
                        leases
                            .borrow_mut()
                            .insert(name, (info.clone(), sim.now() + lease));
                    }
                }
                cb(sim, r);
            },
        );
    }

    /// Drops the cached location of `name` (no-op without a lease
    /// configured). IO errors, releases and vanished spaces call this so
    /// no request is ever routed on a lease the system knows is stale.
    fn invalidate_lease(&self, name: SpaceName) {
        if self.config.location_lease.is_some() {
            self.leases.borrow_mut().remove(&name);
        }
    }

    /// The currently cached (unexpired) location of `name`, if any.
    pub fn cached_location(&self, sim: &Sim, name: SpaceName) -> Option<SpaceInfo> {
        self.leases
            .borrow()
            .get(&name)
            .filter(|(_, expires)| sim.now() < *expires)
            .map(|(info, _)| info.clone())
    }

    /// Releases an allocated space.
    pub fn release(
        &self,
        sim: &Sim,
        name: SpaceName,
        cb: impl FnOnce(&Sim, Result<(), ClientLibError>) + 'static,
    ) {
        self.invalidate_lease(name);
        self.master_result::<()>(sim, "master.release", Arc::new(ReleaseReq { name }), cb);
    }

    /// Spins a disk belonging to this service up or down (§IV-F exposes
    /// disk management to upper-layer services).
    pub fn disk_power(
        &self,
        sim: &Sim,
        disk: DiskId,
        up: bool,
        cb: impl FnOnce(&Sim, Result<(), ClientLibError>) + 'static,
    ) {
        self.master_call::<EndpointAck>(
            sim,
            "master.disk_power",
            Arc::new(DiskPowerReq { disk, up }),
            move |sim, r| {
                let out = match r {
                    Err(e) => Err(e),
                    Ok(Ok(())) => Ok(()),
                    Ok(Err(w)) => Err(ClientLibError::MountFailed(w)),
                };
                cb(sim, out);
            },
        );
    }

    /// Mounts a space; `cb` fires once the device is usable. The returned
    /// handle keeps working across failovers (auto-remount).
    pub fn mount(
        &self,
        sim: &Sim,
        name: SpaceName,
        cb: impl FnOnce(&Sim, Result<Mounted, ClientLibError>) + 'static,
    ) {
        let mounted = Mounted {
            inner: Rc::new(RefCell::new(Mount {
                name,
                size: 0,
                session: None,
                remounting: false,
                queue: VecDeque::new(),
                remount_count: 0,
                on_remount: Vec::new(),
            })),
            client: self.clone(),
        };
        // Remount-notification callbacks and queued IO callbacks routinely
        // capture the mount (and through it this client and its RPC node),
        // forming Rc cycles; clear them when the simulator is torn down so
        // harnesses running many pods in-process release each world's heap.
        let weak = Rc::downgrade(&mounted.inner);
        sim.on_teardown(move || {
            if let Some(inner) = weak.upgrade() {
                let (queue, callbacks, session) = {
                    let mut m = inner.borrow_mut();
                    (
                        std::mem::take(&mut m.queue),
                        std::mem::take(&mut m.on_remount),
                        m.session.take(),
                    )
                };
                drop(queue);
                drop(callbacks);
                drop(session);
            }
        });
        let m2 = mounted.clone();
        let once = Rc::new(RefCell::new(Some(cb)));
        mounted.remount(sim, move |sim, r| {
            if let Some(cb) = once.borrow_mut().take() {
                match r {
                    Ok(()) => cb(sim, Ok(m2.clone())),
                    Err(e) => cb(sim, Err(e)),
                }
            }
        });
    }
}

enum QueuedOp {
    Read {
        offset: u64,
        len: u64,
        cb: ReadCb,
        attempts: u32,
        trace: Option<TraceId>,
    },
    Write {
        offset: u64,
        data: Vec<u8>,
        cb: WriteCb,
        attempts: u32,
        trace: Option<TraceId>,
    },
}

impl QueuedOp {
    fn trace(&self) -> Option<TraceId> {
        match self {
            QueuedOp::Read { trace, .. } | QueuedOp::Write { trace, .. } => *trace,
        }
    }
}

struct Mount {
    name: SpaceName,
    size: u64,
    session: Option<IscsiSession>,
    remounting: bool,
    queue: VecDeque<QueuedOp>,
    remount_count: u64,
    on_remount: Vec<Rc<dyn Fn(&Sim)>>,
}

/// A mounted UStore space: a [`BlockDevice`] that survives failovers.
#[derive(Clone)]
pub struct Mounted {
    inner: Rc<RefCell<Mount>>,
    client: UStoreClient,
}

impl fmt::Debug for Mounted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.inner.borrow();
        f.debug_struct("Mounted")
            .field("name", &m.name)
            .field("mounted", &m.session.is_some())
            .field("queued", &m.queue.len())
            .finish()
    }
}

impl Mounted {
    /// The mounted space's name.
    pub fn name(&self) -> SpaceName {
        self.inner.borrow().name
    }

    /// How many times this mount has recovered via remount.
    pub fn remount_count(&self) -> u64 {
        self.inner.borrow().remount_count
    }

    /// Registers a callback fired after every successful (re)mount —
    /// the paper's "notification call backs ... of disk status changes".
    pub fn on_remount(&self, cb: impl Fn(&Sim) + 'static) {
        self.inner.borrow_mut().on_remount.push(Rc::new(cb));
    }

    fn enqueue(&self, sim: &Sim, op: QueuedOp) {
        self.inner.borrow_mut().queue.push_back(op);
        self.pump(sim);
    }

    fn pump(&self, sim: &Sim) {
        let (session, op) = {
            let mut m = self.inner.borrow_mut();
            let Some(session) = m.session.clone() else {
                return; // remount in progress will re-pump
            };
            let Some(op) = m.queue.pop_front() else {
                return;
            };
            (session, op)
        };
        let this = self.clone();
        // Close the queued interval and expose the stamp to the
        // synchronous dispatch chain (iSCSI → rpc) so the outgoing
        // request carries it.
        let stamp = op
            .trace()
            .and_then(|id| sim.reqtracer().dispatch(id, sim.now()));
        if stamp.is_some() {
            sim.set_current_stamp(stamp);
        }
        match op {
            QueuedOp::Read {
                offset,
                len,
                cb,
                attempts,
                trace,
            } => {
                session.read(sim, offset, len, move |sim, r| match r {
                    Ok(data) => {
                        if let Some(id) = trace {
                            sim.reqtracer().complete(id, sim.now());
                        }
                        cb(sim, Ok(data));
                        this.pump(sim);
                    }
                    Err(e) => {
                        if let Some(id) = trace {
                            sim.reqtracer().io_failed(id, sim.now());
                        }
                        this.io_failed(
                            sim,
                            QueuedOp::Read {
                                offset,
                                len,
                                cb,
                                attempts: attempts + 1,
                                trace,
                            },
                            e.to_string(),
                        )
                    }
                });
            }
            QueuedOp::Write {
                offset,
                data,
                cb,
                attempts,
                trace,
            } => {
                let data2 = data.clone();
                session.write(sim, offset, data, move |sim, r| match r {
                    Ok(()) => {
                        if let Some(id) = trace {
                            sim.reqtracer().complete(id, sim.now());
                        }
                        cb(sim, Ok(()));
                        this.pump(sim);
                    }
                    Err(e) => {
                        if let Some(id) = trace {
                            sim.reqtracer().io_failed(id, sim.now());
                        }
                        this.io_failed(
                            sim,
                            QueuedOp::Write {
                                offset,
                                data: data2,
                                cb,
                                attempts: attempts + 1,
                                trace,
                            },
                            e.to_string(),
                        )
                    }
                });
            }
        }
        if stamp.is_some() {
            sim.set_current_stamp(None);
        }
    }

    fn io_failed(&self, sim: &Sim, op: QueuedOp, why: String) {
        const MAX_ATTEMPTS: u32 = 60;
        let attempts = match &op {
            QueuedOp::Read { attempts, .. } | QueuedOp::Write { attempts, .. } => *attempts,
        };
        if attempts >= MAX_ATTEMPTS {
            if let Some(id) = op.trace() {
                sim.reqtracer().abandon(id);
            }
            match op {
                QueuedOp::Read { cb, .. } => cb(sim, Err(BlockError::Unavailable(why))),
                QueuedOp::Write { cb, .. } => cb(sim, Err(BlockError::Unavailable(why))),
            }
            return;
        }
        // Put the op at the front and (re)start the remount machinery.
        // The failed session's location lease is dead: the space may have
        // moved, so the remount must re-resolve through the Master.
        self.client.invalidate_lease(self.name());
        {
            let mut m = self.inner.borrow_mut();
            m.queue.push_front(op);
            m.session = None;
        }
        sim.count(&self.client.rpc.addr().to_string(), "client.io_retries", 1);
        sim.trace(
            TraceLevel::Warn,
            "clientlib",
            format!("{}: io failed ({why}); remounting", self.name()),
        );
        self.remount(sim, |_, _| {});
    }

    /// Looks the space up and re-establishes the session, then drains the
    /// queue. `done` fires once with the outcome of this remount round.
    fn remount(&self, sim: &Sim, done: impl FnOnce(&Sim, Result<(), ClientLibError>) + 'static) {
        {
            let mut m = self.inner.borrow_mut();
            if m.remounting {
                // Already working on it; piggyback silently.
                drop(m);
                done(sim, Ok(()));
                return;
            }
            m.remounting = true;
        }
        sim.count(&self.client.rpc.addr().to_string(), "client.remounts", 1);
        // A remount triggered by a failover joins that failover's remount
        // phase; the initial mount (or a standalone recovery) is a root.
        let span = match sim.find_open_span("failover.remount") {
            Some(p) => sim.span_child(p, "clientlib", "client.remount"),
            None => sim.span_start("clientlib", "client.remount"),
        };
        sim.span_attr(span, "space", self.name().to_string());
        let deadline = sim.now() + self.client.config.remount_deadline;
        self.remount_attempt(sim, deadline, span, Box::new(done));
    }

    fn remount_attempt(
        &self,
        sim: &Sim,
        deadline: ustore_sim::SimTime,
        span: SpanId,
        done: Box<dyn FnOnce(&Sim, Result<(), ClientLibError>)>,
    ) {
        if sim.now() >= deadline {
            let failed: Vec<QueuedOp> = {
                let mut m = self.inner.borrow_mut();
                m.remounting = false;
                m.queue.drain(..).collect()
            };
            for op in failed {
                if let Some(id) = op.trace() {
                    sim.reqtracer().abandon(id);
                }
                match op {
                    QueuedOp::Read { cb, .. } => {
                        cb(sim, Err(BlockError::Unavailable("remount deadline".into())))
                    }
                    QueuedOp::Write { cb, .. } => {
                        cb(sim, Err(BlockError::Unavailable("remount deadline".into())))
                    }
                }
            }
            sim.span_attr(span, "error", "deadline");
            sim.span_end(span);
            done(
                sim,
                Err(ClientLibError::MountFailed("deadline exceeded".into())),
            );
            return;
        }
        let name = self.name();
        let this = self.clone();
        let lookup_started = sim.now();
        self.client.lookup(sim, name, move |sim, r| {
            // Attribute the Master lookup to every IO stalled behind this
            // remount: it is metadata-path latency, not client queueing.
            let tracer = sim.reqtracer();
            if tracer.is_on() {
                let lookup_dur = sim.now().duration_since(lookup_started);
                // With a lease configured, `lookup` itself records the
                // distribution (hits as zero); don't double-count here.
                if this.client.config.location_lease.is_none() {
                    tracer.note_master_lookup(lookup_dur);
                }
                let ids: Vec<TraceId> = this
                    .inner
                    .borrow()
                    .queue
                    .iter()
                    .filter_map(QueuedOp::trace)
                    .collect();
                for id in ids {
                    tracer.absorb_lookup(id, lookup_dur, lookup_started);
                }
            }
            let retry =
                move |this: Mounted,
                      sim: &Sim,
                      done: Box<dyn FnOnce(&Sim, Result<(), ClientLibError>)>| {
                    sim.count(
                        &this.client.rpc.addr().to_string(),
                        "client.remount_retries",
                        1,
                    );
                    let backoff = this.client.config.remount_backoff;
                    let t2 = this.clone();
                    sim.schedule_in(backoff, move |sim| {
                        t2.remount_attempt(sim, deadline, span, done)
                    });
                };
            match r {
                Err(ClientLibError::Master(MasterError::NoSuchSpace)) => {
                    this.client.invalidate_lease(name);
                    this.inner.borrow_mut().remounting = false;
                    sim.span_attr(span, "error", "no_such_space");
                    sim.span_end(span);
                    done(sim, Err(ClientLibError::Master(MasterError::NoSuchSpace)));
                }
                Err(_) => retry(this, sim, done),
                Ok(info) => match info.host_addr {
                    None => retry(this, sim, done), // failover in progress
                    Some(host) => {
                        let this2 = this.clone();
                        IscsiSession::login(
                            sim,
                            &this.client.rpc,
                            &host,
                            &info.target,
                            this.client.config.io_timeout,
                            move |sim, sess| match sess {
                                Err(_) => {
                                    // The location we just resolved (and
                                    // possibly leased) does not answer:
                                    // drop it, or every retry would be
                                    // served the same dead endpoint from
                                    // cache for the rest of the lease.
                                    this2.client.invalidate_lease(this2.name());
                                    retry(this2, sim, done);
                                }
                                Ok(session) => {
                                    // Device settle (Figure 6 part 3).
                                    let settle = this2.client.config.mount_settle;
                                    let this3 = this2.clone();
                                    sim.schedule_in(settle, move |sim| {
                                        let callbacks = {
                                            let mut m = this3.inner.borrow_mut();
                                            m.size = session.capacity();
                                            m.session = Some(session);
                                            m.remounting = false;
                                            m.remount_count += 1;
                                            m.on_remount.clone()
                                        };
                                        for cb in callbacks {
                                            cb(sim);
                                        }
                                        sim.span_end(span);
                                        sim.trace(
                                            TraceLevel::Info,
                                            "clientlib",
                                            format!("{} mounted", this3.name()),
                                        );
                                        done(sim, Ok(()));
                                        this3.pump(sim);
                                    });
                                }
                            },
                        );
                    }
                },
            }
        });
    }
}

impl BlockDevice for Mounted {
    fn capacity(&self) -> u64 {
        self.inner.borrow().size
    }

    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: ReadCb) {
        let trace = sim.reqtracer().begin(ReqKind::Read, sim.now());
        self.enqueue(
            sim,
            QueuedOp::Read {
                offset,
                len,
                cb,
                attempts: 0,
                trace,
            },
        );
    }

    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: WriteCb) {
        let trace = sim.reqtracer().begin(ReqKind::Write, sim.now());
        self.enqueue(
            sim,
            QueuedOp::Write {
                offset,
                data,
                cb,
                attempts: 0,
                trace,
            },
        );
    }
}
