//! Storage allocation (the Master's `StorAlloc` metadata, §IV-A).
//!
//! Pure allocation logic, kept separate from the Master's RPC plumbing so
//! the policy is directly testable. Two placement rules come from the
//! paper: *"a physical disk is preferred to be allocated to the same
//! service, which facilitates power management"*, and *"a disk located
//! near the client ... improves locality and reduces networking
//! overhead"*.

use std::collections::BTreeMap;
use std::fmt;

use ustore_fabric::{DiskId, HostId};

use crate::ids::{SpaceName, UnitId};

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No disk has a contiguous free extent of the requested size.
    NoSpace,
    /// The space name is not allocated.
    NoSuchSpace,
    /// Requested size is zero.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoSpace => write!(f, "no disk has enough contiguous free space"),
            AllocError::NoSuchSpace => write!(f, "space is not allocated"),
            AllocError::ZeroSize => write!(f, "cannot allocate zero bytes"),
        }
    }
}

impl std::error::Error for AllocError {}

/// One allocated extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset on the disk.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Owning service (e.g. `"hdfs"`, `"backup"`).
    pub service: String,
}

#[derive(Debug, Clone)]
struct DiskSpace {
    capacity: u64,
    next_space: u32,
    extents: BTreeMap<u32, Extent>,
}

impl DiskSpace {
    /// Free bytes (total, not necessarily contiguous).
    fn free(&self) -> u64 {
        self.capacity - self.extents.values().map(|e| e.len).sum::<u64>()
    }

    /// First-fit gap of at least `size` bytes, if any.
    fn find_gap(&self, size: u64) -> Option<u64> {
        let mut cursor = 0u64;
        let mut spans: Vec<(u64, u64)> = self.extents.values().map(|e| (e.offset, e.len)).collect();
        spans.sort_unstable();
        for (off, len) in spans {
            if off.saturating_sub(cursor) >= size {
                return Some(cursor);
            }
            cursor = cursor.max(off + len);
        }
        (self.capacity.saturating_sub(cursor) >= size).then_some(cursor)
    }

    fn serves(&self, service: &str) -> bool {
        self.extents.values().any(|e| e.service == service)
    }
}

/// A successful allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Global name of the space.
    pub name: SpaceName,
    /// Extent on the disk.
    pub extent: Extent,
}

/// The allocator over every registered disk.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    disks: BTreeMap<(UnitId, DiskId), DiskSpace>,
}

impl Allocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a disk with its capacity (idempotent).
    pub fn register_disk(&mut self, unit: UnitId, disk: DiskId, capacity: u64) {
        self.disks.entry((unit, disk)).or_insert(DiskSpace {
            capacity,
            next_space: 0,
            extents: BTreeMap::new(),
        });
    }

    /// Allocates `size` bytes for `service`.
    ///
    /// Placement preference (§IV-A): disks already serving this service
    /// first, then disks attached to `preferred_host`, then most free
    /// space.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] or [`AllocError::NoSpace`].
    pub fn allocate(
        &mut self,
        service: &str,
        size: u64,
        attachments: &BTreeMap<(UnitId, DiskId), HostId>,
        preferred_host: Option<HostId>,
    ) -> Result<Allocation, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let mut candidates: Vec<((UnitId, DiskId), i64, u64, u64)> = Vec::new();
        for (key, ds) in &self.disks {
            let Some(gap) = ds.find_gap(size) else {
                continue;
            };
            let mut score = 0i64;
            if ds.serves(service) {
                score += 2;
            }
            if let (Some(pref), Some(host)) = (preferred_host, attachments.get(key)) {
                if *host == pref {
                    score += 1;
                }
            }
            candidates.push((*key, score, ds.free(), gap));
        }
        // Highest score first; among service-affine disks pack the fullest
        // (least free) to keep a service's data on few spindles; otherwise
        // prefer the emptiest for balance.
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| {
                    if a.1 >= 2 {
                        a.2.cmp(&b.2) // pack
                    } else {
                        b.2.cmp(&a.2) // balance
                    }
                })
                .then_with(|| a.0.cmp(&b.0))
        });
        let ((unit, disk), _, _, offset) = *candidates.first().ok_or(AllocError::NoSpace)?;
        let ds = self.disks.get_mut(&(unit, disk)).expect("candidate exists");
        let space = ds.next_space;
        ds.next_space += 1;
        let extent = Extent {
            offset,
            len: size,
            service: service.to_owned(),
        };
        ds.extents.insert(space, extent.clone());
        Ok(Allocation {
            name: SpaceName::new(unit, disk, space),
            extent,
        })
    }

    /// Restores an allocation read back from persistent metadata.
    pub fn restore(&mut self, name: SpaceName, extent: Extent) {
        let ds = self
            .disks
            .entry((name.unit, name.disk))
            .or_insert(DiskSpace {
                capacity: u64::MAX,
                next_space: 0,
                extents: BTreeMap::new(),
            });
        ds.next_space = ds.next_space.max(name.space + 1);
        ds.extents.insert(name.space, extent);
    }

    /// Releases an allocated space.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoSuchSpace`] if the name is unknown.
    pub fn release(&mut self, name: SpaceName) -> Result<(), AllocError> {
        let ds = self
            .disks
            .get_mut(&(name.unit, name.disk))
            .ok_or(AllocError::NoSuchSpace)?;
        ds.extents
            .remove(&name.space)
            .map(|_| ())
            .ok_or(AllocError::NoSuchSpace)
    }

    /// Looks up an allocation.
    pub fn lookup(&self, name: SpaceName) -> Option<&Extent> {
        self.disks
            .get(&(name.unit, name.disk))?
            .extents
            .get(&name.space)
    }

    /// All spaces allocated on one disk.
    pub fn spaces_on(&self, unit: UnitId, disk: DiskId) -> Vec<(SpaceName, Extent)> {
        match self.disks.get(&(unit, disk)) {
            None => Vec::new(),
            Some(ds) => ds
                .extents
                .iter()
                .map(|(s, e)| (SpaceName::new(unit, disk, *s), e.clone()))
                .collect(),
        }
    }

    /// All disks that hold data for `service` (power-management scope).
    pub fn disks_of_service(&self, service: &str) -> Vec<(UnitId, DiskId)> {
        self.disks
            .iter()
            .filter(|(_, ds)| ds.serves(service))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Free bytes on one disk.
    pub fn free_on(&self, unit: UnitId, disk: DiskId) -> Option<u64> {
        self.disks.get(&(unit, disk)).map(DiskSpace::free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1_000_000_000;

    fn allocator(disks: u32, capacity: u64) -> Allocator {
        let mut a = Allocator::new();
        for d in 0..disks {
            a.register_disk(UnitId(0), DiskId(d), capacity);
        }
        a
    }

    fn no_attach() -> BTreeMap<(UnitId, DiskId), HostId> {
        BTreeMap::new()
    }

    #[test]
    fn allocates_and_looks_up() {
        let mut a = allocator(4, 10 * GB);
        let got = a.allocate("svc", GB, &no_attach(), None).expect("alloc");
        assert_eq!(got.extent.len, GB);
        assert_eq!(a.lookup(got.name).expect("lookup").service, "svc");
        assert_eq!(a.free_on(UnitId(0), got.name.disk), Some(9 * GB));
    }

    #[test]
    fn same_service_packs_on_same_disk() {
        let mut a = allocator(4, 10 * GB);
        let first = a.allocate("svc", GB, &no_attach(), None).expect("alloc");
        let second = a.allocate("svc", GB, &no_attach(), None).expect("alloc");
        assert_eq!(first.name.disk, second.name.disk, "service affinity");
        // A different service lands elsewhere (balance rule).
        let other = a.allocate("other", GB, &no_attach(), None).expect("alloc");
        assert_ne!(other.name.disk, first.name.disk);
    }

    #[test]
    fn locality_prefers_near_host() {
        let mut a = allocator(4, 10 * GB);
        let mut attach = BTreeMap::new();
        for d in 0..4 {
            attach.insert((UnitId(0), DiskId(d)), HostId(d / 2));
        }
        let got = a
            .allocate("svc", GB, &attach, Some(HostId(1)))
            .expect("alloc");
        assert_eq!(attach[&(UnitId(0), got.name.disk)], HostId(1));
    }

    #[test]
    fn release_and_reuse_gap() {
        let mut a = allocator(1, 3 * GB);
        let x = a.allocate("s", GB, &no_attach(), None).expect("x");
        let _y = a.allocate("s", GB, &no_attach(), None).expect("y");
        let _z = a.allocate("s", GB, &no_attach(), None).expect("z");
        assert_eq!(
            a.allocate("s", GB, &no_attach(), None).unwrap_err(),
            AllocError::NoSpace
        );
        a.release(x.name).expect("release");
        let again = a.allocate("s", GB, &no_attach(), None).expect("reuse");
        assert_eq!(again.extent.offset, 0, "first-fit reuses the gap");
        assert_ne!(again.name.space, x.name.space, "space ids are not recycled");
    }

    #[test]
    fn fragmentation_respects_contiguity() {
        let mut a = allocator(1, 4 * GB);
        let x = a.allocate("s", GB, &no_attach(), None).expect("x");
        let _y = a.allocate("s", GB, &no_attach(), None).expect("y");
        let z = a.allocate("s", GB, &no_attach(), None).expect("z");
        a.release(x.name).expect("rel x");
        a.release(z.name).expect("rel z");
        // 3 GB free but max contiguous gap is 2 GB (tail) — the paper's
        // spaces are contiguous extents.
        assert!(a.allocate("s", GB * 5 / 2, &no_attach(), None).is_err());
        a.allocate("s", 2 * GB, &no_attach(), None)
            .expect("tail gap fits");
    }

    #[test]
    fn errors() {
        let mut a = allocator(1, GB);
        assert_eq!(
            a.allocate("s", 0, &no_attach(), None).unwrap_err(),
            AllocError::ZeroSize
        );
        assert_eq!(
            a.release(SpaceName::new(UnitId(0), DiskId(0), 9))
                .unwrap_err(),
            AllocError::NoSuchSpace
        );
        assert_eq!(
            a.release(SpaceName::new(UnitId(5), DiskId(0), 0))
                .unwrap_err(),
            AllocError::NoSuchSpace
        );
    }

    #[test]
    fn restore_rebuilds_state() {
        let mut a = allocator(2, 10 * GB);
        let x = a.allocate("svc", GB, &no_attach(), None).expect("x");
        // A new master restores from persisted metadata.
        let mut b = Allocator::new();
        b.register_disk(UnitId(0), DiskId(0), 10 * GB);
        b.register_disk(UnitId(0), DiskId(1), 10 * GB);
        b.restore(x.name, x.extent.clone());
        assert_eq!(b.lookup(x.name), Some(&x.extent));
        // Next allocation on that disk does not collide.
        let y = b.allocate("svc", GB, &no_attach(), None).expect("y");
        assert_eq!(y.name.disk, x.name.disk, "affinity survives restore");
        assert_ne!(y.name.space, x.name.space);
        assert_ne!(y.extent.offset, x.extent.offset);
    }

    #[test]
    fn spaces_on_and_service_scope() {
        let mut a = allocator(2, 10 * GB);
        let x = a.allocate("svc", GB, &no_attach(), None).expect("x");
        a.allocate("svc", GB, &no_attach(), None).expect("y");
        assert_eq!(a.spaces_on(UnitId(0), x.name.disk).len(), 2);
        assert_eq!(a.disks_of_service("svc"), vec![(UnitId(0), x.name.disk)]);
        assert!(a.disks_of_service("nope").is_empty());
    }
}
