//! The UStore Controller (§IV-C).
//!
//! Two Controllers per deploy unit run on two of the controlling hosts in
//! primary/backup fashion. The Master sends explicit topology scheduling
//! commands ("connect disk A to host H1"); the Controller executes them
//! against the fabric — locking, Algorithm 1, actuation through the
//! microcontroller, verification against the USB trees reported by the
//! EndPoints, and rollback on timeout — all implemented by
//! [`FabricRuntime::execute`]. It also plans failover evacuations on the
//! Master's behalf, since it owns the detailed fabric knowledge.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use ustore_fabric::FabricRuntime;
use ustore_net::RpcNode;
use ustore_sim::TraceLevel;

use crate::ids::UnitId;
use crate::messages::{ExecuteReq, ExecuteResp, PlanReq, PlanResp};

/// One Controller process, serving `ctl.*` RPC methods on its host's node.
pub struct Controller {
    unit: UnitId,
    rpc: RpcNode,
    runtime: FabricRuntime,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("unit", &self.unit)
            .field("addr", self.rpc.addr())
            .finish()
    }
}

impl Controller {
    /// Starts a Controller for `unit` on the host owning `rpc`, directly
    /// connected to the unit's control plane.
    pub fn new(unit: UnitId, rpc: RpcNode, runtime: FabricRuntime) -> Rc<Self> {
        let ctl = Rc::new(Controller { unit, rpc, runtime });

        let c = ctl.clone();
        ctl.rpc.serve("ctl.plan", move |sim, req, responder| {
            let req: &PlanReq = req.downcast_ref().expect("PlanReq");
            let plan: PlanResp = c
                .runtime
                .with_state(|s| {
                    if req.pull_cohort {
                        s.plan_move(&req.disks, &req.targets)
                    } else {
                        s.plan_evacuation(&req.disks, &req.targets)
                    }
                })
                .map_err(|e| e.to_string());
            responder.reply(sim, Arc::new(plan), 256);
        });

        let c = ctl.clone();
        ctl.rpc.serve("ctl.execute", move |sim, req, responder| {
            let req: &ExecuteReq = req.downcast_ref().expect("ExecuteReq");
            sim.trace(
                TraceLevel::Info,
                "controller",
                format!("{}: executing {} pairs", c.rpc.addr(), req.pairs.len()),
            );
            c.runtime.execute(sim, req.pairs.clone(), move |sim, r| {
                let resp: ExecuteResp = r.map_err(|e| e.to_string());
                responder.reply(sim, Arc::new(resp), 64);
            });
        });

        ctl
    }

    /// The deploy unit this Controller manages.
    pub fn unit(&self) -> UnitId {
        self.unit
    }

    /// The fabric runtime (for co-located components).
    pub fn runtime(&self) -> &FabricRuntime {
        &self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::time::Duration;
    use ustore_fabric::{DiskId, HostId};
    use ustore_net::{Addr, NetConfig, Network};
    use ustore_sim::Sim;

    fn setup() -> (Sim, Network, Rc<Controller>, RpcNode) {
        let sim = Sim::new(41);
        let net = Network::new(NetConfig::default());
        let runtime = FabricRuntime::prototype(&sim);
        let ctl_rpc = RpcNode::new(&net, Addr::new("host-0"));
        let ctl = Controller::new(UnitId(0), ctl_rpc, runtime);
        let master = RpcNode::new(&net, Addr::new("master-0"));
        sim.run_until(sim.now() + Duration::from_secs(10)); // enumeration
        (sim, net, ctl, master)
    }

    #[test]
    fn plan_and_execute_over_rpc() {
        let (sim, _net, ctl, master) = setup();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let runtime = ctl.runtime().clone();
        master.call::<PlanResp>(
            &sim,
            &Addr::new("host-0"),
            "ctl.plan",
            Arc::new(PlanReq {
                disks: (0..4).map(DiskId).collect(),
                targets: vec![HostId(1), HostId(2), HostId(3)],
                pull_cohort: false,
            }),
            128,
            Duration::from_secs(1),
            move |_sim, resp| {
                let plan = resp.expect("rpc").as_ref().clone().expect("plan");
                assert_eq!(plan.len(), 4);
                let _ = &runtime;
                d.set(true);
            },
        );
        sim.run_until(sim.now() + Duration::from_secs(2));
        assert!(done.get());
    }

    #[test]
    fn execute_moves_disks() {
        let (sim, _net, ctl, master) = setup();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        master.call::<ExecuteResp>(
            &sim,
            &Addr::new("host-0"),
            "ctl.execute",
            Arc::new(ExecuteReq {
                pairs: (0..4).map(|i| (DiskId(i), HostId(2))).collect(),
            }),
            128,
            Duration::from_secs(30),
            move |_, resp| {
                resp.expect("rpc").as_ref().clone().expect("execute");
                d.set(true);
            },
        );
        sim.run_until(sim.now() + Duration::from_secs(30));
        assert!(done.get());
        assert_eq!(ctl.runtime().attached_host(DiskId(0)), Some(HostId(2)));
    }

    #[test]
    fn execute_error_propagates() {
        let (sim, _net, _ctl, master) = setup();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        // Moving a single disk of a group conflicts (Algorithm 1).
        master.call::<ExecuteResp>(
            &sim,
            &Addr::new("host-0"),
            "ctl.execute",
            Arc::new(ExecuteReq {
                pairs: vec![(DiskId(0), HostId(1))],
            }),
            128,
            Duration::from_secs(5),
            move |_, resp| {
                let err = resp.expect("rpc").as_ref().clone().unwrap_err();
                assert!(err.contains("disconnect"), "{err}");
                d.set(true);
            },
        );
        sim.run_until(sim.now() + Duration::from_secs(5));
        assert!(done.get());
    }
}
