//! The UStore Master (§IV-A).
//!
//! A single logical Master maintains the holistic view of the system:
//! **SysConf** (static configuration, persisted in the coordination
//! service), **SysStat** (live host/disk state, kept only in memory and
//! rebuilt from heartbeats), and **StorAlloc** (storage allocations,
//! persisted synchronously). For fault tolerance it runs as active/standby
//! processes elected through the Paxos-backed coordination service
//! (§V-B), exactly like the prototype's ZooKeeper deployment.
//!
//! Failure handling (§IV-E): when heartbeats from a host stop, the Master
//! declares it dead and commands the unit's Controller to move the dead
//! host's disks to survivors; once the moved disks re-enumerate, the new
//! hosts' EndPoints re-expose their targets and ClientLibs remount.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_consensus::{
    group_addrs, ClientConfig as CoordClientConfig, CoordClient, CreateMode, Election,
};
use ustore_fabric::{DiskId, HostId};
use ustore_net::{Addr, Network, RpcNode};
use ustore_sim::{CounterHandle, FastMap, FastSet, Sim, SimTime, TraceLevel};

use crate::alloc::{Allocator, Extent};
use crate::ids::{SpaceName, UnitId};
use crate::messages::ExposeReq;
use crate::messages::{
    AllocateReq, AllocateResp, DiskPowerReq, EndpointAck, ExecuteReq, ExecuteResp, Heartbeat,
    HeartbeatAck, LookupReq, LookupResp, MasterError, PlanReq, PlanResp, ReleaseReq, ReleaseResp,
    SpaceInfo, UnexposeReq,
};
use crate::meta::MetaRouter;

/// Static configuration of one deploy unit (part of SysConf).
#[derive(Debug, Clone)]
pub struct UnitConf {
    /// The unit's id.
    pub unit: UnitId,
    /// Hosts connected to the unit, with their network addresses.
    pub hosts: Vec<(HostId, Addr)>,
    /// Disks in the unit, with capacities.
    pub disks: Vec<(DiskId, u64)>,
    /// Addresses of the unit's (primary, backup) Controllers.
    pub controllers: Vec<Addr>,
}

/// Master tunables.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// A host missing heartbeats for this long is declared dead.
    pub heartbeat_timeout: Duration,
    /// Failure-detection sweep period.
    pub sweep_interval: Duration,
    /// RPC timeout toward EndPoints/Controllers.
    pub rpc_timeout: Duration,
    /// Timeout for Controller execute commands (enumeration takes seconds).
    pub execute_timeout: Duration,
    /// A disk unseen in heartbeats for this long (while its host lives)
    /// is treated as a fabric-device failure (§IV-E).
    pub disk_timeout: Duration,
    /// Minimum gap between recovery attempts for the same disk.
    pub disk_retry: Duration,
    /// Metadata partitions (§IV-A scaled out): StorAlloc is split into
    /// per-unit-group namespaces, each persisted in its own replicated
    /// log. Partition 0 lives in the base coordination cluster under the
    /// legacy paths; `1` (the default) is the pre-partition Master,
    /// byte-for-byte.
    pub partitions: u32,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            heartbeat_timeout: Duration::from_millis(1000),
            sweep_interval: Duration::from_millis(200),
            rpc_timeout: Duration::from_millis(500),
            execute_timeout: Duration::from_secs(40),
            disk_timeout: Duration::from_secs(8),
            disk_retry: Duration::from_secs(30),
            partitions: 1,
        }
    }
}

struct M {
    config: MasterConfig,
    active: bool,
    units: BTreeMap<UnitId, UnitConf>,
    // SysStat — memory only (§IV-A), rebuilt from heartbeats.
    host_last_hb: FastMap<(UnitId, HostId), SimTime>,
    host_alive: FastMap<(UnitId, HostId), bool>,
    host_addr: FastMap<(UnitId, HostId), Addr>,
    disk_host: FastMap<(UnitId, DiskId), HostId>,
    disk_last_seen: FastMap<(UnitId, DiskId), SimTime>,
    failover_in_progress: BTreeSet<(UnitId, HostId)>,
    disk_recovery_attempted: FastMap<(UnitId, DiskId), SimTime>,
    // StorAlloc — persisted through the coordination service.
    alloc: Allocator,
    exposures_pushed: FastSet<(SpaceName, HostId)>,
    /// Allocations whose metadata write is still in flight; not exposed
    /// until persisted (§IV-A's synchronous-persistence rule).
    pending_persist: FastSet<SpaceName>,
    /// Lazily-resolved heartbeat counter handle — the heartbeat path runs
    /// for every beat from every host, so it must not re-render the
    /// address label each time.
    hb_counter: Option<CounterHandle>,
    /// When this process became active (baseline for detecting hosts that
    /// died before ever heartbeating to this master).
    activated_at: Option<SimTime>,
}

/// One Master process (active or standby).
#[derive(Clone)]
pub struct Master {
    rpc: RpcNode,
    /// Partition-0 client: base cluster — election, sessions, legacy paths.
    coord: CoordClient,
    /// Clients for partitions 1.. (empty in a single-partition deployment).
    part_coords: Rc<Vec<CoordClient>>,
    router: MetaRouter,
    inner: Rc<RefCell<M>>,
    election: Rc<RefCell<Option<Rc<Election>>>>,
}

impl fmt::Debug for Master {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.inner.borrow();
        f.debug_struct("Master")
            .field("addr", self.rpc.addr())
            .field("active", &m.active)
            .finish()
    }
}

impl Master {
    /// Starts a Master process at `addr` (its coordination-client socket is
    /// `<addr>-zk`), joining the active/standby election.
    pub fn new(
        sim: &Sim,
        net: &Network,
        addr: Addr,
        coord_servers: Vec<Addr>,
        units: Vec<UnitConf>,
        config: MasterConfig,
    ) -> Master {
        let rpc = RpcNode::new(net, addr.clone());
        let router = MetaRouter::new(config.partitions, units.len() as u32);
        let coord = CoordClient::new(
            net,
            MetaRouter::coord_socket(&addr, 0),
            coord_servers.clone(),
            CoordClientConfig::default(),
        );
        // One additional session per metadata partition, against that
        // partition's own replica group. Nothing is created at
        // `partitions == 1`.
        let part_coords: Vec<CoordClient> = (1..router.partitions())
            .map(|k| {
                CoordClient::new(
                    net,
                    MetaRouter::coord_socket(&addr, k),
                    group_addrs(&coord_servers, k),
                    CoordClientConfig::default(),
                )
            })
            .collect();
        let mut alloc = Allocator::new();
        for u in &units {
            for (d, cap) in &u.disks {
                alloc.register_disk(u.unit, *d, *cap);
            }
        }
        let master = Master {
            rpc,
            coord: coord.clone(),
            part_coords: Rc::new(part_coords),
            router,
            inner: Rc::new(RefCell::new(M {
                config,
                active: false,
                units: units.into_iter().map(|u| (u.unit, u)).collect(),
                host_last_hb: FastMap::default(),
                host_alive: FastMap::default(),
                host_addr: FastMap::default(),
                disk_host: FastMap::default(),
                disk_last_seen: FastMap::default(),
                failover_in_progress: BTreeSet::new(),
                disk_recovery_attempted: FastMap::default(),
                alloc,
                exposures_pushed: FastSet::default(),
                pending_persist: FastSet::default(),
                hb_counter: None,
                activated_at: None,
            })),
            election: Rc::new(RefCell::new(None)),
        };
        master.install_handlers();
        // The election's `on_change` closure captures this Master, and the
        // Master holds the election handle back — drop it (weakly) at
        // teardown so the pair can be collected.
        let weak = Rc::downgrade(&master.election);
        sim.on_teardown(move || {
            if let Some(e) = weak.upgrade() {
                *e.borrow_mut() = None;
            }
        });
        // Connect to the coordination service and join the election.
        let m2 = master.clone();
        coord.connect(sim, move |sim, r| {
            if r.is_err() {
                sim.trace(
                    TraceLevel::Error,
                    "master",
                    "cannot reach coordination service",
                );
                return;
            }
            let m3 = m2.clone();
            let election = Election::join(
                sim,
                &m2.coord,
                "/ustore/master-election",
                move |sim, leads| {
                    if leads {
                        m3.activate(sim);
                    }
                },
            );
            *m2.election.borrow_mut() = Some(election);
        });
        // Partition sessions connect concurrently with the election: the
        // election needs several RPC round trips, so by the time this
        // process can activate and serve allocations the routed sessions
        // are already live.
        for (i, c) in master.part_coords.iter().enumerate() {
            let part = i as u32 + 1;
            c.connect(sim, move |sim, r| {
                if r.is_err() {
                    sim.trace(
                        TraceLevel::Error,
                        "master",
                        format!("cannot reach metadata partition {part}"),
                    );
                }
            });
        }
        master.arm_sweeper(sim);
        master
    }

    /// The coordination client owning metadata partition `p`.
    fn coord_for(&self, p: u32) -> &CoordClient {
        if p == 0 {
            &self.coord
        } else {
            &self.part_coords[(p - 1) as usize]
        }
    }

    /// Number of metadata partitions this master routes across.
    pub fn partitions(&self) -> u32 {
        self.router.partitions()
    }

    /// Whether this process is currently the active master.
    pub fn is_active(&self) -> bool {
        self.inner.borrow().active
    }

    /// The master's service address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    /// Simulates a process crash: stops answering and lets the session
    /// (and election candidacy) lapse.
    pub fn pause(&self) {
        self.inner.borrow_mut().active = false;
        self.coord.stop_pinging();
        for c in self.part_coords.iter() {
            c.stop_pinging();
        }
    }

    /// SysStat view: the host a disk is believed attached to.
    pub fn disk_host(&self, unit: UnitId, d: DiskId) -> Option<HostId> {
        self.inner.borrow().disk_host.get(&(unit, d)).copied()
    }

    /// SysStat view: whether a host is believed alive.
    pub fn host_alive(&self, unit: UnitId, h: HostId) -> bool {
        self.inner
            .borrow()
            .host_alive
            .get(&(unit, h))
            .copied()
            .unwrap_or(false)
    }

    // ---- Activation --------------------------------------------------------

    fn activate(&self, sim: &Sim) {
        sim.trace(
            TraceLevel::Info,
            "master",
            format!("{} becoming active", self.rpc.addr()),
        );
        // Load persisted StorAlloc, then start serving.
        let this = self.clone();
        self.ensure_meta_paths(sim, move |sim| {
            this.load_allocations(sim);
        });
    }

    fn ensure_meta_paths(&self, sim: &Sim, then: impl FnOnce(&Sim) + 'static) {
        // Every partition creates its namespace chain in its own log; the
        // continuation fires once all of them exist. With one partition
        // this is the legacy `/ustore` → `/ustore/alloc` chain, verbatim.
        let total = self.router.partitions();
        let remaining = Rc::new(RefCell::new(total));
        let then = Rc::new(RefCell::new(Some(then)));
        for p in 0..total {
            let coord = self.coord_for(p).clone();
            let chain = self.router.create_chain(p);
            let remaining = remaining.clone();
            let then = then.clone();
            create_chain(
                sim,
                coord,
                chain,
                0,
                Box::new(move |sim| {
                    let done = {
                        let mut r = remaining.borrow_mut();
                        *r -= 1;
                        *r == 0
                    };
                    if done {
                        if let Some(t) = then.borrow_mut().take() {
                            t(sim);
                        }
                    }
                }),
            );
        }
    }

    fn load_allocations(&self, sim: &Sim) {
        // Read <alloc-dir>/<space-name-with-escaped-slashes> from every
        // partition's log; activation completes once every partition has
        // been replayed. A metadata-store error stalls activation, exactly
        // as the single-log Master did.
        let parts_remaining = Rc::new(RefCell::new(self.router.partitions()));
        for p in 0..self.router.partitions() {
            let this = self.clone();
            let coord = self.coord_for(p).clone();
            let dir = self.router.alloc_dir(p);
            let dir2 = dir.clone();
            let parts_remaining = parts_remaining.clone();
            coord.clone().children_watch(sim, dir, None, move |sim, r| {
                let part_done = move |this: &Master, sim: &Sim| {
                    let done = {
                        let mut rem = parts_remaining.borrow_mut();
                        *rem -= 1;
                        *rem == 0
                    };
                    if done {
                        this.finish_activation(sim);
                    }
                };
                let Ok(kids) = r else {
                    sim.trace(TraceLevel::Error, "master", "cannot list allocations");
                    return;
                };
                if kids.is_empty() {
                    part_done(&this, sim);
                    return;
                }
                let remaining = Rc::new(RefCell::new(kids.len()));
                let part_done = Rc::new(RefCell::new(Some(part_done)));
                for kid in kids {
                    let Some(name) = decode_space(&kid) else {
                        continue;
                    };
                    let this2 = this.clone();
                    let remaining = remaining.clone();
                    let part_done = part_done.clone();
                    coord.get(sim, format!("{dir2}/{kid}"), move |sim, r| {
                        if let Ok(Some((data, _))) = r {
                            if let Some(extent) = decode_extent(&data) {
                                this2.inner.borrow_mut().alloc.restore(name, extent);
                            }
                        }
                        let done = {
                            let mut rem = remaining.borrow_mut();
                            *rem -= 1;
                            *rem == 0
                        };
                        if done {
                            if let Some(pd) = part_done.borrow_mut().take() {
                                pd(&this2, sim);
                            }
                        }
                    });
                }
            });
        }
    }

    fn finish_activation(&self, sim: &Sim) {
        {
            let mut m = self.inner.borrow_mut();
            m.active = true;
            m.activated_at = Some(sim.now());
        }
        sim.trace(
            TraceLevel::Info,
            "master",
            format!("{} active", self.rpc.addr()),
        );
    }

    // ---- RPC handlers ---------------------------------------------------------

    fn install_handlers(&self) {
        let m = self.clone();
        self.rpc
            .serve("master.heartbeat", move |sim, req, responder| {
                let hb: &Heartbeat = req.downcast_ref().expect("Heartbeat");
                let ack = m.on_heartbeat(sim, hb);
                responder.reply(sim, Arc::new(ack), 16);
            });
        let m = self.clone();
        self.rpc
            .serve("master.allocate", move |sim, req, responder| {
                let req: &AllocateReq = req.downcast_ref().expect("AllocateReq");
                m.on_allocate(sim, req.clone(), responder);
            });
        let m = self.clone();
        self.rpc.serve("master.lookup", move |sim, req, responder| {
            let req: &LookupReq = req.downcast_ref().expect("LookupReq");
            let resp: LookupResp = m.on_lookup(req.name);
            sim.reqtracer().note_lookup_served(resp.is_ok());
            responder.reply(sim, Arc::new(resp), 128);
        });
        let m = self.clone();
        self.rpc
            .serve("master.release", move |sim, req, responder| {
                let req: &ReleaseReq = req.downcast_ref().expect("ReleaseReq");
                m.on_release(sim, req.name, responder);
            });
        let m = self.clone();
        self.rpc
            .serve("master.disk_power", move |sim, req, responder| {
                let req: &DiskPowerReq = req.downcast_ref().expect("DiskPowerReq");
                m.on_disk_power(sim, req.clone(), responder);
            });
    }

    fn on_heartbeat(&self, sim: &Sim, hb: &Heartbeat) -> HeartbeatAck {
        let pushes: Vec<(Addr, ExposeReq)> = {
            let mut m = self.inner.borrow_mut();
            if !m.active {
                return HeartbeatAck::NotActive;
            }
            let key = (hb.unit, hb.host);
            m.host_last_hb.insert(key, sim.now());
            let was_alive = m.host_alive.insert(key, true);
            if was_alive == Some(false) {
                sim.trace(
                    TraceLevel::Info,
                    "master",
                    format!("{} {} is back", hb.unit, hb.host),
                );
            }
            m.host_addr.insert(key, hb.addr.clone());
            let mut pushes = Vec::new();
            let now = sim.now();
            for d in &hb.ready_disks {
                m.disk_host.insert((hb.unit, *d), hb.host);
                m.disk_last_seen.insert((hb.unit, *d), now);
                // Ensure every allocation on this disk is exposed there.
                for (name, extent) in m.alloc.spaces_on(hb.unit, *d) {
                    if m.pending_persist.contains(&name) {
                        continue;
                    }
                    if m.exposures_pushed.insert((name, hb.host)) {
                        pushes.push((
                            hb.addr.clone(),
                            ExposeReq {
                                name,
                                offset: extent.offset,
                                len: extent.len,
                            },
                        ));
                    }
                }
            }
            pushes
        };
        {
            let mut m = self.inner.borrow_mut();
            if m.hb_counter.is_none() {
                m.hb_counter = Some(sim.counter(self.rpc.addr().as_str(), "master.heartbeats"));
            }
            m.hb_counter.as_ref().expect("hb counter initialized").inc();
        }
        let timeout = self.inner.borrow().config.rpc_timeout;
        for (addr, req) in pushes {
            self.rpc.call::<EndpointAck>(
                sim,
                &addr,
                "ep.expose",
                Arc::new(req),
                64,
                timeout,
                |_, _| {},
            );
        }
        HeartbeatAck::Ok
    }

    fn on_allocate(&self, sim: &Sim, req: AllocateReq, responder: ustore_net::Responder) {
        let allocation = {
            let mut m = self.inner.borrow_mut();
            if !m.active {
                responder.reply(
                    sim,
                    Arc::new(Err(MasterError::NotActive) as AllocateResp),
                    16,
                );
                return;
            }
            // Locality: map the client's hinted address to a host.
            let preferred = req.near.as_ref().and_then(|near| {
                m.host_addr
                    .iter()
                    .find(|(_, a)| *a == near)
                    .map(|((_, h), _)| *h)
            });
            let attachments: BTreeMap<(UnitId, DiskId), HostId> =
                m.disk_host.iter().map(|(k, v)| (*k, *v)).collect();
            match m
                .alloc
                .allocate(&req.service, req.size, &attachments, preferred)
            {
                Ok(a) => a,
                Err(e) => {
                    drop(m);
                    responder.reply(
                        sim,
                        Arc::new(Err(MasterError::Alloc(e)) as AllocateResp),
                        16,
                    );
                    return;
                }
            }
        };
        // Persist synchronously to the metadata store before replying
        // (§IV-A: "stored persistently in the Master synchronously") —
        // routed to the partition owning the space's unit.
        let part = self.router.partition_of_unit(allocation.name.unit);
        let znode = format!(
            "{}/{}",
            self.router.alloc_dir(part),
            encode_space(allocation.name)
        );
        let data = encode_extent(&allocation.extent);
        let this = self.clone();
        let name = allocation.name;
        let extent = allocation.extent.clone();
        self.inner.borrow_mut().pending_persist.insert(name);
        self.coord_for(part)
            .create(sim, znode, data, CreateMode::Persistent, move |sim, r| {
                this.inner.borrow_mut().pending_persist.remove(&name);
                if r.is_err() {
                    // Roll the allocation back; metadata must win.
                    let _ = this.inner.borrow_mut().alloc.release(name);
                    responder.reply(
                        sim,
                        Arc::new(Err(MasterError::MetadataUnavailable) as AllocateResp),
                        16,
                    );
                    return;
                }
                let info = this.space_info(name, &extent);
                // Proactively expose on the current host.
                if let Some(addr) = info.host_addr.clone() {
                    let timeout = this.inner.borrow().config.rpc_timeout;
                    let host = this.inner_disk_host(name);
                    this.inner
                        .borrow_mut()
                        .exposures_pushed
                        .insert((name, host));
                    this.rpc.call::<EndpointAck>(
                        sim,
                        &addr,
                        "ep.expose",
                        Arc::new(ExposeReq {
                            name,
                            offset: extent.offset,
                            len: extent.len,
                        }),
                        64,
                        timeout,
                        |_, _| {},
                    );
                }
                responder.reply(sim, Arc::new(Ok(info) as AllocateResp), 128);
            });
    }

    fn inner_disk_host(&self, name: SpaceName) -> HostId {
        self.inner
            .borrow()
            .disk_host
            .get(&(name.unit, name.disk))
            .copied()
            .unwrap_or(HostId(u32::MAX))
    }

    fn space_info(&self, name: SpaceName, extent: &Extent) -> SpaceInfo {
        let m = self.inner.borrow();
        let host_addr = m
            .disk_host
            .get(&(name.unit, name.disk))
            .filter(|h| {
                m.host_alive
                    .get(&(name.unit, **h))
                    .copied()
                    .unwrap_or(false)
            })
            .and_then(|h| m.host_addr.get(&(name.unit, *h)).cloned());
        SpaceInfo {
            name,
            size: extent.len,
            host_addr,
            target: name.target_name(),
        }
    }

    fn on_lookup(&self, name: SpaceName) -> LookupResp {
        let m = self.inner.borrow();
        if !m.active {
            return Err(MasterError::NotActive);
        }
        let extent = m
            .alloc
            .lookup(name)
            .cloned()
            .ok_or(MasterError::NoSuchSpace)?;
        drop(m);
        Ok(self.space_info(name, &extent))
    }

    fn on_release(&self, sim: &Sim, name: SpaceName, responder: ustore_net::Responder) {
        {
            let mut m = self.inner.borrow_mut();
            if !m.active {
                responder.reply(
                    sim,
                    Arc::new(Err(MasterError::NotActive) as ReleaseResp),
                    16,
                );
                return;
            }
            if m.alloc.release(name).is_err() {
                responder.reply(
                    sim,
                    Arc::new(Err(MasterError::NoSuchSpace) as ReleaseResp),
                    16,
                );
                return;
            }
            m.exposures_pushed.retain(|(n, _)| *n != name);
        }
        // Withdraw the target and delete the metadata.
        let host = self.inner_disk_host(name);
        let addr = self
            .inner
            .borrow()
            .host_addr
            .get(&(name.unit, host))
            .cloned();
        let timeout = self.inner.borrow().config.rpc_timeout;
        if let Some(addr) = addr {
            self.rpc.call::<EndpointAck>(
                sim,
                &addr,
                "ep.unexpose",
                Arc::new(UnexposeReq { name }),
                32,
                timeout,
                |_, _| {},
            );
        }
        let part = self.router.partition_of_unit(name.unit);
        let znode = format!("{}/{}", self.router.alloc_dir(part), encode_space(name));
        self.coord_for(part)
            .delete(sim, znode, None, move |sim, r| {
                let resp: ReleaseResp = r.map_err(|_| MasterError::MetadataUnavailable);
                responder.reply(sim, Arc::new(resp), 16);
            });
    }

    fn on_disk_power(&self, sim: &Sim, req: DiskPowerReq, responder: ustore_net::Responder) {
        let target = {
            let m = self.inner.borrow();
            if !m.active {
                responder.reply(
                    sim,
                    Arc::new(Err("not active".to_owned()) as EndpointAck),
                    16,
                );
                return;
            }
            m.units
                .keys()
                .find_map(|u| m.disk_host.get(&(*u, req.disk)).map(|h| (*u, *h)))
                .and_then(|(u, h)| m.host_addr.get(&(u, h)).cloned())
        };
        let Some(addr) = target else {
            responder.reply(
                sim,
                Arc::new(Err("disk not attached".to_owned()) as EndpointAck),
                16,
            );
            return;
        };
        let timeout = self.inner.borrow().config.rpc_timeout;
        self.rpc.call::<EndpointAck>(
            sim,
            &addr,
            "ep.disk_power",
            Arc::new(req),
            32,
            timeout,
            move |sim, r| {
                let resp: EndpointAck = match r {
                    Ok(a) => (*a).clone(),
                    Err(e) => Err(e.to_string()),
                };
                responder.reply(sim, Arc::new(resp), 16);
            },
        );
    }

    // ---- Failure detection and failover (§IV-E) --------------------------------

    fn arm_sweeper(&self, sim: &Sim) {
        let interval = self.inner.borrow().config.sweep_interval;
        let this = self.clone();
        sim.schedule_in(interval, move |sim| {
            this.sweep(sim);
            this.arm_sweeper(sim);
        });
    }

    fn sweep(&self, sim: &Sim) {
        let dead: Vec<(UnitId, HostId)> = {
            let mut m = self.inner.borrow_mut();
            if !m.active {
                return;
            }
            let timeout = m.config.heartbeat_timeout;
            let now = sim.now();
            let Some(activated_at) = m.activated_at else {
                return;
            };
            // Sweep every configured host, not just those we have heard
            // from: a host that died before this master activated never
            // sends a heartbeat at all.
            let mut newly_dead: Vec<(UnitId, HostId)> = Vec::new();
            for (unit, conf) in &m.units {
                for (host, _) in &conf.hosts {
                    let key = (*unit, *host);
                    if m.failover_in_progress.contains(&key)
                        || m.host_alive.get(&key) == Some(&false)
                    {
                        continue;
                    }
                    let last = m.host_last_hb.get(&key).copied().unwrap_or(activated_at);
                    if now.saturating_duration_since(last) > timeout {
                        newly_dead.push(key);
                    }
                }
            }
            for k in &newly_dead {
                m.host_alive.insert(*k, false);
                m.failover_in_progress.insert(*k);
            }
            newly_dead
        };
        for (unit, host) in dead {
            sim.trace(
                TraceLevel::Warn,
                "master",
                format!("{unit} {host} missed heartbeats; starting failover"),
            );
            sim.count(&self.rpc.addr().to_string(), "master.failovers", 1);
            // Join the failover span opened at failure injection, or root a
            // fresh one (failures can arise without the harness's help).
            let victim = format!("{unit}/{host}");
            let root = sim
                .with_spans(|t| t.find_open_by("failover", "victim", &victim))
                .unwrap_or_else(|| {
                    let id = sim.span_start("master", "failover");
                    sim.span_attr(id, "victim", victim.clone());
                    id
                });
            // Detection ends the moment the host is declared dead.
            match sim.with_spans(|t| {
                t.children(root)
                    .filter(|s| &*s.name == "failover.detection" && s.is_open())
                    .map(|s| s.id)
                    .next()
            }) {
                Some(det) => sim.span_end(det),
                None => {
                    let det = sim.span_child(root, "master", "failover.detection");
                    sim.span_end(det);
                }
            }
            sim.span_child(root, "master", "failover.reconfiguration");
            self.failover(sim, unit, host);
        }
        self.sweep_missing_disks(sim);
    }

    /// §IV-E fabric-device failures: a disk that stops appearing in any
    /// live host's USB tree (its hub, switch or bridge died) gets its path
    /// switched away from the failed device; if no alternative path
    /// exists, the failure is reported for repair.
    fn sweep_missing_disks(&self, sim: &Sim) {
        let now = sim.now();
        let missing: Vec<(UnitId, DiskId, Vec<HostId>, Vec<Addr>)> = {
            let mut m = self.inner.borrow_mut();
            if !m.active {
                return;
            }
            let Some(activated_at) = m.activated_at else {
                return;
            };
            let timeout = m.config.disk_timeout;
            let retry = m.config.disk_retry;
            let mut out = Vec::new();
            let units: Vec<UnitId> = m.units.keys().copied().collect();
            for unit in units {
                // Skip while a host failover is running in this unit.
                if m.failover_in_progress.iter().any(|(u, _)| *u == unit) {
                    continue;
                }
                let conf = m.units[&unit].clone();
                let targets: Vec<HostId> = conf
                    .hosts
                    .iter()
                    .map(|(h, _)| *h)
                    .filter(|h| m.host_alive.get(&(unit, *h)).copied().unwrap_or(false))
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                for (d, _) in &conf.disks {
                    let key = (unit, *d);
                    // Only disks whose mapped host is alive: dead hosts are
                    // the host-failover path's job.
                    if let Some(h) = m.disk_host.get(&key) {
                        if m.host_alive.get(&(unit, *h)) != Some(&true) {
                            continue;
                        }
                    }
                    let last = m.disk_last_seen.get(&key).copied().unwrap_or(activated_at);
                    if now.saturating_duration_since(last) <= timeout {
                        continue;
                    }
                    if let Some(t) = m.disk_recovery_attempted.get(&key) {
                        if now.saturating_duration_since(*t) < retry {
                            continue;
                        }
                    }
                    m.disk_recovery_attempted.insert(key, now);
                    out.push((unit, *d, targets.clone(), conf.controllers.clone()));
                }
            }
            out
        };
        for (unit, d, targets, controllers) in missing {
            sim.trace(
                TraceLevel::Warn,
                "master",
                format!("{unit} {d} vanished from all USB trees; rerouting"),
            );
            self.reroute_disk(sim, unit, d, targets, controllers, false, |_, _| {});
        }
    }

    /// Plans and executes a path switch for one disk (§IV-E), choosing
    /// targets among the unit's live hosts *other than* the disk's current
    /// host when any exist — the entry point for proactive moves, e.g. the
    /// health watchdog escalating sustained degradation before the disk
    /// fails outright. `done` fires with `true` once the fabric
    /// reconfiguration completed and SysStat maps the disk to a new host
    /// (EndPoint re-export and client remounts follow asynchronously).
    pub fn recover_disk(
        &self,
        sim: &Sim,
        unit: UnitId,
        d: DiskId,
        done: impl FnOnce(&Sim, bool) + 'static,
    ) {
        let picked = {
            let mut m = self.inner.borrow_mut();
            if !m.active || !m.units.contains_key(&unit) {
                None
            } else {
                let conf = m.units[&unit].clone();
                let current = m.disk_host.get(&(unit, d)).copied();
                let live: Vec<HostId> = conf
                    .hosts
                    .iter()
                    .map(|(h, _)| *h)
                    .filter(|h| m.host_alive.get(&(unit, *h)).copied().unwrap_or(false))
                    .collect();
                let away: Vec<HostId> = live
                    .iter()
                    .copied()
                    .filter(|h| Some(*h) != current)
                    .collect();
                let targets = if away.is_empty() { live } else { away };
                if targets.is_empty() {
                    None
                } else {
                    m.disk_recovery_attempted.insert((unit, d), sim.now());
                    Some((targets, conf.controllers))
                }
            }
        };
        let Some((targets, controllers)) = picked else {
            sim.trace(
                TraceLevel::Error,
                "master",
                format!("{unit} {d}: no recovery target available"),
            );
            done(sim, false);
            return;
        };
        // A still-attached disk moves with its hub cohort: relocating it
        // turns switches its healthy hub-mates share.
        self.reroute_disk(sim, unit, d, targets, controllers, true, done);
    }

    /// The shared plan→execute reroute machinery behind
    /// [`sweep_missing_disks`](Self::sweep_missing_disks) and
    /// [`recover_disk`](Self::recover_disk).
    #[allow(clippy::too_many_arguments)]
    fn reroute_disk(
        &self,
        sim: &Sim,
        unit: UnitId,
        d: DiskId,
        targets: Vec<HostId>,
        controllers: Vec<Addr>,
        pull_cohort: bool,
        done: impl FnOnce(&Sim, bool) + 'static,
    ) {
        let this = self.clone();
        let rpc_timeout = self.inner.borrow().config.rpc_timeout;
        let exec_timeout = self.inner.borrow().config.execute_timeout;
        self.controller_call::<PlanResp>(
            sim,
            controllers.clone(),
            "ctl.plan",
            Arc::new(PlanReq {
                disks: vec![d],
                targets,
                pull_cohort,
            }),
            rpc_timeout,
            move |sim, plan| {
                let Some((responsive, plan)) = plan else {
                    done(sim, false);
                    return;
                };
                match plan {
                    Err(why) => {
                        // No alternative path: the paper "reports the
                        // failure to system administrator for future
                        // replacement or repair".
                        sim.trace(
                            TraceLevel::Error,
                            "master",
                            format!("{unit} {d} unrecoverable ({why}); needs repair"),
                        );
                        done(sim, false);
                    }
                    Ok(pairs) => {
                        let mut order = vec![responsive.clone()];
                        order.extend(controllers.into_iter().filter(|a| *a != responsive));
                        let this2 = this.clone();
                        let pairs2 = pairs.clone();
                        this.controller_call::<ExecuteResp>(
                            sim,
                            order,
                            "ctl.execute",
                            Arc::new(ExecuteReq { pairs }),
                            exec_timeout,
                            move |sim, r| {
                                let ok = matches!(r, Some((_, Ok(()))));
                                if ok {
                                    let mut m = this2.inner.borrow_mut();
                                    for (d, h) in &pairs2 {
                                        m.disk_host.insert((unit, *d), *h);
                                    }
                                    m.exposures_pushed
                                        .retain(|(n, _)| !pairs2.iter().any(|(d, _)| *d == n.disk));
                                }
                                sim.trace(
                                    TraceLevel::Info,
                                    "master",
                                    format!(
                                        "reroute of {unit} {d} {}",
                                        if ok { "complete" } else { "failed" }
                                    ),
                                );
                                done(sim, ok);
                            },
                        );
                    }
                }
            },
        );
    }

    fn failover(&self, sim: &Sim, unit: UnitId, dead: HostId) {
        let (disks, targets, controllers) = {
            let m = self.inner.borrow();
            // The dead host's disks: mapped to it in SysStat, or not
            // claimed by any host at all (a fresh master may never have
            // seen the dead host's heartbeats).
            let conf = &m.units[&unit];
            let disks: Vec<DiskId> = conf
                .disks
                .iter()
                .map(|(d, _)| *d)
                .filter(|d| match m.disk_host.get(&(unit, *d)) {
                    Some(h) => *h == dead,
                    None => true,
                })
                .collect();
            let targets: Vec<HostId> = conf
                .hosts
                .iter()
                .map(|(h, _)| *h)
                .filter(|h| *h != dead && m.host_alive.get(&(unit, *h)).copied().unwrap_or(false))
                .collect();
            (disks, targets, conf.controllers.clone())
        };
        if disks.is_empty() || targets.is_empty() {
            self.inner
                .borrow_mut()
                .failover_in_progress
                .remove(&(unit, dead));
            return;
        }
        let this = self.clone();
        self.controller_call::<PlanResp>(
            sim,
            controllers.clone(),
            "ctl.plan",
            Arc::new(PlanReq {
                disks,
                targets,
                pull_cohort: false,
            }),
            self.inner.borrow().config.rpc_timeout,
            move |sim, plan| {
                let Some((responsive, Ok(pairs))) = plan else {
                    sim.trace(TraceLevel::Error, "master", "failover planning failed");
                    this.inner
                        .borrow_mut()
                        .failover_in_progress
                        .remove(&(unit, dead));
                    close_failover_spans(sim, unit, dead, Some("planning_failed"));
                    return;
                };
                // Prefer the controller that just answered; keep the rest
                // as fallbacks.
                let mut order = vec![responsive.clone()];
                order.extend(controllers.into_iter().filter(|a| *a != responsive));
                let this2 = this.clone();
                let pairs2 = pairs.clone();
                let exec_timeout = this.inner.borrow().config.execute_timeout;
                this.controller_call::<ExecuteResp>(
                    sim,
                    order,
                    "ctl.execute",
                    Arc::new(ExecuteReq { pairs }),
                    exec_timeout,
                    move |sim, r| {
                        let ok = matches!(r, Some((_, Ok(()))));
                        {
                            let mut m = this2.inner.borrow_mut();
                            m.failover_in_progress.remove(&(unit, dead));
                            if ok {
                                for (d, h) in &pairs2 {
                                    m.disk_host.insert((unit, *d), *h);
                                }
                                // Force re-pushing exposures to new hosts.
                                m.exposures_pushed
                                    .retain(|(n, _)| !pairs2.iter().any(|(d, _)| *d == n.disk));
                            }
                        }
                        if ok {
                            // Reconfiguration done; the remount phase runs
                            // until clients read again (the harness or the
                            // experiment closes it).
                            let victim = format!("{unit}/{dead}");
                            if let Some(root) =
                                sim.with_spans(|t| t.find_open_by("failover", "victim", &victim))
                            {
                                if let Some(rec) = sim.with_spans(|t| {
                                    t.children(root)
                                        .filter(|s| {
                                            &*s.name == "failover.reconfiguration" && s.is_open()
                                        })
                                        .map(|s| s.id)
                                        .next()
                                }) {
                                    sim.span_end(rec);
                                }
                                sim.span_child(root, "master", "failover.remount");
                            }
                            sim.count(
                                &this2.rpc.addr().to_string(),
                                "master.failovers_completed",
                                1,
                            );
                        } else {
                            close_failover_spans(sim, unit, dead, Some("execute_failed"));
                            sim.count(&this2.rpc.addr().to_string(), "master.failovers_failed", 1);
                        }
                        sim.trace(
                            TraceLevel::Info,
                            "master",
                            format!(
                                "failover of {unit} {dead} {}",
                                if ok { "complete" } else { "FAILED" }
                            ),
                        );
                    },
                );
            },
        );
    }

    /// Calls the unit's primary Controller, falling back to the backup on
    /// timeout (§IV-C: "Only when the primary fails will the Master send
    /// commands to the backup Controller").
    fn controller_call<R: std::any::Any + Send + Sync + Clone>(
        &self,
        sim: &Sim,
        controllers: Vec<Addr>,
        method: &'static str,
        body: ustore_net::Payload,
        timeout: Duration,
        cb: impl FnOnce(&Sim, Option<(Addr, R)>) + 'static,
    ) {
        let Some(primary) = controllers.first().cloned() else {
            cb(sim, None);
            return;
        };
        let this = self.clone();
        let rest: Vec<Addr> = controllers[1..].to_vec();
        let body2 = body.clone();
        let primary2 = primary.clone();
        self.rpc.call::<R>(
            sim,
            &primary,
            method,
            body,
            256,
            timeout,
            move |sim, r| match r {
                Ok(resp) => cb(sim, Some((primary2, (*resp).clone()))),
                Err(_) if !rest.is_empty() => {
                    sim.trace(
                        TraceLevel::Warn,
                        "master",
                        format!("primary controller unreachable; trying backup for {method}"),
                    );
                    this.controller_call::<R>(sim, rest, method, body2, timeout, cb);
                }
                Err(_) => cb(sim, None),
            },
        );
    }
}

/// Closes the failover span tree for `unit`/`dead` after an unsuccessful
/// outcome: any open phase child is ended, the root gets an `error`
/// attribute and is ended too.
fn close_failover_spans(sim: &Sim, unit: UnitId, dead: HostId, error: Option<&str>) {
    let victim = format!("{unit}/{dead}");
    let Some(root) = sim.with_spans(|t| t.find_open_by("failover", "victim", &victim)) else {
        return;
    };
    let open_children: Vec<ustore_sim::SpanId> = sim.with_spans(|t| {
        t.children(root)
            .filter(|s| s.is_open())
            .map(|s| s.id)
            .collect()
    });
    for c in open_children {
        sim.span_end(c);
    }
    if let Some(e) = error {
        sim.span_attr(root, "error", e);
    }
    sim.span_end(root);
}

/// Creates `paths[idx..]` in order (parents first) on `coord`, then fires
/// `then`. Already-existing nodes are fine: create errors are ignored,
/// exactly like the pre-partition bootstrap chain.
fn create_chain(
    sim: &Sim,
    coord: CoordClient,
    paths: Vec<String>,
    idx: usize,
    then: Box<dyn FnOnce(&Sim)>,
) {
    if idx >= paths.len() {
        then(sim);
        return;
    }
    let path = paths[idx].clone();
    let coord2 = coord.clone();
    coord.create(
        sim,
        path,
        Vec::new(),
        CreateMode::Persistent,
        move |sim, _| {
            create_chain(sim, coord2, paths, idx + 1, then);
        },
    );
}

/// Encodes a space name as a single znode name (slashes become dots).
fn encode_space(name: SpaceName) -> String {
    format!("{}.{}.{}", name.unit.0, name.disk.0, name.space)
}

fn decode_space(s: &str) -> Option<SpaceName> {
    let mut it = s.split('.');
    let unit = it.next()?.parse().ok()?;
    let disk = it.next()?.parse().ok()?;
    let space = it.next()?.parse().ok()?;
    it.next()
        .is_none()
        .then(|| SpaceName::new(UnitId(unit), DiskId(disk), space))
}

fn encode_extent(e: &Extent) -> Vec<u8> {
    format!("{},{},{}", e.offset, e.len, e.service).into_bytes()
}

fn decode_extent(data: &[u8]) -> Option<Extent> {
    let s = std::str::from_utf8(data).ok()?;
    let mut it = s.splitn(3, ',');
    let offset = it.next()?.parse().ok()?;
    let len = it.next()?.parse().ok()?;
    let service = it.next()?.to_owned();
    Some(Extent {
        offset,
        len,
        service,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_encoding_roundtrip() {
        let n = SpaceName::new(UnitId(2), DiskId(7), 11);
        assert_eq!(encode_space(n), "2.7.11");
        assert_eq!(decode_space("2.7.11"), Some(n));
        assert_eq!(decode_space("2.7"), None);
        assert_eq!(decode_space("a.b.c"), None);
    }

    #[test]
    fn extent_encoding_roundtrip() {
        let e = Extent {
            offset: 5,
            len: 10,
            service: "svc,with,commas".into(),
        };
        let enc = encode_extent(&e);
        assert_eq!(decode_extent(&enc), Some(e));
        assert_eq!(decode_extent(b"bogus"), None);
    }
}
