//! RPC message types exchanged between UStore components.
//!
//! All messages travel over `ustore-net`'s RPC layer as `Rc<dyn Any>`
//! payloads; this module is the single place where both sides of each
//! conversation agree on the types.
//!
//! Metadata partitioning is deliberately invisible here: clients address
//! *a Master*, and the Master routes each request to the partition owning
//! the space's unit (see `crate::meta::MetaRouter`). No wire format
//! changes when the partition count does, which is what lets a
//! single-partition deployment remain byte-identical with the
//! pre-partition system.

use std::fmt;

use ustore_fabric::{DiskId, HostId};
use ustore_net::Addr;

use crate::alloc::AllocError;
use crate::ids::{SpaceName, UnitId};

/// Periodic EndPoint → Master heartbeat (§IV-B).
#[derive(Debug, Clone)]
pub struct Heartbeat {
    /// Which deploy unit the host serves.
    pub unit: UnitId,
    /// The reporting host.
    pub host: HostId,
    /// The host's network address (for ClientLib redirection).
    pub addr: Addr,
    /// Disks currently enumerated and usable on this host.
    pub ready_disks: Vec<DiskId>,
    /// Monotonic sequence number.
    pub seq: u64,
}

/// Master's answer to a heartbeat.
#[derive(Debug, Clone)]
pub enum HeartbeatAck {
    /// Accepted by the active master.
    Ok,
    /// This master is standby; retry elsewhere.
    NotActive,
}

/// Client → Master: allocate storage.
#[derive(Debug, Clone)]
pub struct AllocateReq {
    /// Requesting service (drives the disk-affinity rule).
    pub service: String,
    /// Bytes requested.
    pub size: u64,
    /// Client locality hint: the host address it is nearest to.
    pub near: Option<Addr>,
}

/// Client → Master: where is this space?
#[derive(Debug, Clone)]
pub struct LookupReq {
    /// The space to resolve.
    pub name: SpaceName,
}

/// Client → Master: release a space.
#[derive(Debug, Clone)]
pub struct ReleaseReq {
    /// The space to release.
    pub name: SpaceName,
}

/// Resolved location of a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceInfo {
    /// Global name.
    pub name: SpaceName,
    /// Size in bytes.
    pub size: u64,
    /// Address of the host currently exposing it (None while failing over).
    pub host_addr: Option<Addr>,
    /// iSCSI target name.
    pub target: String,
}

/// Master-side errors surfaced to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterError {
    /// This master process is not the active one.
    NotActive,
    /// Allocation failed.
    Alloc(AllocError),
    /// Unknown space.
    NoSuchSpace,
    /// The metadata store is unreachable.
    MetadataUnavailable,
}

impl fmt::Display for MasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterError::NotActive => write!(f, "not the active master"),
            MasterError::Alloc(e) => write!(f, "allocation: {e}"),
            MasterError::NoSuchSpace => write!(f, "no such space"),
            MasterError::MetadataUnavailable => write!(f, "metadata store unreachable"),
        }
    }
}

impl std::error::Error for MasterError {}

/// Master response wrappers.
pub type AllocateResp = Result<SpaceInfo, MasterError>;
/// Lookup response.
pub type LookupResp = Result<SpaceInfo, MasterError>;
/// Release response.
pub type ReleaseResp = Result<(), MasterError>;

/// Master → EndPoint: expose a space as an iSCSI target.
#[derive(Debug, Clone)]
pub struct ExposeReq {
    /// The space.
    pub name: SpaceName,
    /// Byte offset on the disk.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Master → EndPoint: withdraw a target.
#[derive(Debug, Clone)]
pub struct UnexposeReq {
    /// The space.
    pub name: SpaceName,
}

/// Master/Service → EndPoint: disk power control (§IV-F).
#[derive(Debug, Clone)]
pub struct DiskPowerReq {
    /// The disk to control.
    pub disk: DiskId,
    /// Spin the disk up (`true`) or down (`false`).
    pub up: bool,
}

/// Generic ack for EndPoint commands.
pub type EndpointAck = Result<(), String>;

/// Master → Controller: plan an evacuation.
#[derive(Debug, Clone)]
pub struct PlanReq {
    /// Disks to move (a dead host's).
    pub disks: Vec<DiskId>,
    /// Live hosts to move them to.
    pub targets: Vec<HostId>,
    /// Allow still-attached hub-mates to be pulled along (proactive
    /// single-disk moves) rather than vetoing the plan (dead-host
    /// evacuation).
    pub pull_cohort: bool,
}

/// Controller's plan.
pub type PlanResp = Result<Vec<(DiskId, HostId)>, String>;

/// Master → Controller: execute a reconfiguration (§IV-C).
#[derive(Debug, Clone)]
pub struct ExecuteReq {
    /// Disk→host pairs to connect.
    pub pairs: Vec<(DiskId, HostId)>,
}

/// Controller execution outcome.
pub type ExecuteResp = Result<(), String>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_error_display() {
        assert_eq!(MasterError::NotActive.to_string(), "not the active master");
        assert_eq!(
            MasterError::Alloc(AllocError::NoSpace).to_string(),
            "allocation: no disk has enough contiguous free space"
        );
    }

    #[test]
    fn space_info_equality() {
        let a = SpaceInfo {
            name: SpaceName::new(UnitId(0), DiskId(1), 2),
            size: 10,
            host_addr: Some(Addr::new("h")),
            target: "t".into(),
        };
        assert_eq!(a, a.clone());
    }
}
