//! Sharded pod: one UStore deployment split across a fixed set of
//! simulation worlds, executed by [`ShardCoordinator`] on 1..N threads.
//!
//! The decomposition follows the paper's structure (§III): deploy units
//! are mostly independent — their only cross-unit coupling is
//! control-plane RPC over the data-center network — so the pod is split
//! into one *control world* (coordination cluster, Masters, clients) and
//! `groups` *unit-group worlds* (each a contiguous block of deploy units
//! with their USB fabrics, disks, EndPoints and Controllers). The
//! network's `base_latency` is the PDES lookahead bound.
//!
//! Crucially the world decomposition is fixed by the scenario, **not** by
//! the shard count: `--shards N` only chooses how many OS threads execute
//! the same worlds. Each world consumes its own RNG stream and owns its
//! own telemetry registries, so per-world exports — and any digest
//! combined over them in world-id order — are bit-identical for every
//! shard count.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_consensus::{CoordConfig, CoordGroup, CoordServer};
use ustore_fabric::{FabricRuntime, Topology};
use ustore_net::{Addr, Envelope, Network, RpcNode};
use ustore_sim::{
    FastMap, LookaheadMatrix, ProfSnapshot, Profiler, RequestTracer, Routed, Scraper,
    ScraperConfig, ShardCoordinator, ShardWorld, Sim, SimTime, TraceLevel, TraceSnapshot,
    TrafficMatrix, TrafficSnapshot, WorldBuilder,
};

use crate::clientlib::UStoreClient;
use crate::controller::Controller;
use crate::endpoint::Endpoint;
use crate::ids::UnitId;
use crate::master::Master;
use crate::system::{coord_addr, master_addr, unit_conf_for, unit_host_addr, SystemConfig};

/// When (and how) each world starts its telemetry pipeline. Scheduled at
/// an absolute instant so every world samples on the same clock.
#[derive(Debug, Clone)]
pub struct TelemetryPlan {
    /// Absolute instant the publisher + scraper start.
    pub start: SimTime,
    /// Scraper parameters (each world runs its own scraper).
    pub scraper: ScraperConfig,
}

/// Request-lifecycle tracing parameters (see `ustore_sim::reqtrace`).
#[derive(Debug, Clone)]
pub struct TracePlan {
    /// Keep one full per-stage trace every this many completions.
    pub sample_every: u64,
    /// Always retain this many slowest-request exemplars.
    pub exemplars: usize,
}

impl Default for TracePlan {
    fn default() -> Self {
        TracePlan {
            sample_every: ustore_sim::reqtrace::DEFAULT_SAMPLE_EVERY,
            exemplars: ustore_sim::reqtrace::DEFAULT_EXEMPLARS,
        }
    }
}

/// Shape of a sharded pod.
#[derive(Debug, Clone)]
pub struct ShardedPodConfig {
    /// The deployment shape (units, hosts, disks, control plane).
    pub system: SystemConfig,
    /// Number of unit-group worlds. Fixed per scenario: changing it
    /// changes the decomposition and therefore the telemetry digests;
    /// changing `shards` does not.
    pub groups: u32,
    /// Executor threads (1 = fully sequential on the calling thread).
    pub shards: usize,
    /// Client names to create in the control world (they must be known at
    /// build time so the placement map covers them).
    pub clients: Vec<String>,
    /// Telemetry pipeline start, if any.
    pub telemetry: Option<TelemetryPlan>,
    /// Minimum trace level recorded by every world.
    pub trace_level: TraceLevel,
    /// Wall-clock engine profiling: when true the pod carries an active
    /// [`Profiler`] (phase timers on every engine thread) and a
    /// [`TrafficMatrix`] (cross-world send accounting in every world's
    /// network). Off by default; never affects simulation state or
    /// telemetry digests.
    pub profile: bool,
    /// Request-lifecycle tracing: when `Some` every world carries the
    /// same active [`RequestTracer`] and each client IO accumulates typed
    /// stage intervals (queue, lookup, network, spin-up, seek, transfer,
    /// retry). Off by default; never affects simulation state or
    /// telemetry digests.
    pub trace: Option<TracePlan>,
}

/// Telemetry and engine statistics of one finalized world.
#[derive(Debug, Clone)]
pub struct WorldTelemetry {
    /// World id (0 = control world).
    pub world: usize,
    /// Metrics registry snapshot as stable JSON.
    pub metrics_json: String,
    /// Span log as stable JSON.
    pub spans_json: String,
    /// Scraped time-series CSV (empty without a [`TelemetryPlan`]).
    pub scrape_csv: String,
    /// Events this world's engine processed.
    pub events: u64,
    /// Peak live event-queue depth of this world's engine.
    pub peak_queue_depth: f64,
    /// Replicated-log lengths of the metadata partitions hosted by this
    /// world, as `(partition, applied length)` pairs (partition 0 = the
    /// base cluster). Empty for worlds hosting no coordination replicas.
    pub partition_logs: Vec<(u32, u64)>,
}

/// One world of the sharded pod.
pub struct PodWorld {
    id: usize,
    sim: Sim,
    net: Network,
    runtimes: Vec<FabricRuntime>,
    endpoints: Vec<Endpoint>,
    controllers: Vec<Rc<Controller>>,
    coord: Vec<CoordServer>,
    coord_groups: Vec<CoordGroup>,
    masters: Vec<Master>,
    scraper: Rc<RefCell<Option<Scraper>>>,
}

impl fmt::Debug for PodWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PodWorld")
            .field("id", &self.id)
            .field("units", &self.runtimes.len())
            .field("endpoints", &self.endpoints.len())
            .finish()
    }
}

impl ShardWorld for PodWorld {
    type Msg = Envelope;

    fn sim(&self) -> &Sim {
        &self.sim
    }

    fn drain_outbox_into(&mut self, out: &mut Vec<Routed<Envelope>>) {
        self.net.drain_outbox_into(out);
    }

    fn deliver(&mut self, batch: &mut Vec<Routed<Envelope>>) {
        for r in batch.drain(..) {
            debug_assert_eq!(r.dst_world, self.id, "misrouted envelope");
            self.net.deliver_remote(&self.sim, r);
        }
    }

    fn finalize(self: Box<Self>) -> Box<dyn std::any::Any + Send> {
        // Residency gauges are published right before the snapshot so the
        // export is complete, mirroring the single-world harness.
        for rt in &self.runtimes {
            rt.publish_residency(&self.sim);
        }
        let _ = (
            &self.endpoints,
            &self.controllers,
            &self.coord,
            &self.masters,
        );
        let mut partition_logs: Vec<(u32, u64)> = Vec::new();
        if let Some(base) = self.coord.iter().map(|s| s.applied_len()).max() {
            partition_logs.push((0, base));
        }
        partition_logs.extend(self.coord_groups.iter().map(|g| (g.group(), g.log_len())));
        let telemetry = Box::new(WorldTelemetry {
            world: self.id,
            metrics_json: self.sim.metrics_snapshot().to_json().to_string(),
            spans_json: self.sim.with_spans(|t| t.to_json()).to_string(),
            scrape_csv: self
                .scraper
                .borrow()
                .as_ref()
                .map(|s| s.to_csv())
                .unwrap_or_default(),
            events: self.sim.events_processed(),
            peak_queue_depth: self
                .sim
                .metrics_snapshot()
                .gauge("sim", "queue_depth_max")
                .unwrap_or(0.0),
            partition_logs,
        });
        // Break the engine's Rc cycles (pending recurring timers capture
        // the sim and components) so harnesses running many sharded pods
        // in one process don't accumulate every world's heap.
        self.sim.teardown();
        telemetry
    }
}

/// Derives a world's root seed from the run seed: every world gets an
/// independent, deterministic RNG stream regardless of shard count.
fn world_seed(root: u64, world: usize) -> u64 {
    let mut z = root
        ^ (world as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Units per unit-group world.
fn units_per_group(units: u32, groups: u32) -> u32 {
    units.div_ceil(groups)
}

/// The world a unit's hosts are placed in (shard-placement rule:
/// contiguous unit blocks, world 0 reserved for the control plane).
pub fn world_of_unit(unit: u32, units: u32, groups: u32) -> usize {
    1 + (unit / units_per_group(units, groups)) as usize
}

/// The world metadata partition `partition`'s replica group is placed in:
/// the unit-group world owning every unit of the partition when the
/// partition map aligns with the world decomposition (metadata co-located
/// with the data it describes), else the control world. Partition 0 — the
/// base cluster — always lives in the control world.
pub fn partition_world(partition: u32, partitions: u32, units: u32, groups: u32) -> usize {
    if partition == 0 {
        return 0;
    }
    let per = units.max(1).div_ceil(partitions.max(1)).max(1);
    let lo = partition * per;
    let hi = ((partition + 1) * per).min(units);
    if lo >= hi {
        return 0; // partition owns no units; keep it with the control plane
    }
    let w = world_of_unit(lo, units, groups);
    if (lo..hi).all(|u| world_of_unit(u, units, groups) == w) {
        w
    } else {
        0
    }
}

/// Builds the static address → world placement map shared by all worlds.
fn build_placement(cfg: &ShardedPodConfig) -> Arc<FastMap<Addr, usize>> {
    let sys = &cfg.system;
    let mut placement: FastMap<Addr, usize> = FastMap::default();
    for i in 0..sys.coord_nodes {
        placement.insert(coord_addr(i), 0);
    }
    for i in 0..sys.masters {
        let m = master_addr(i);
        placement.insert(Addr::new(format!("{m}-zk")), 0);
        placement.insert(m, 0);
    }
    // Metadata partitions: each partition's replica group lives in the
    // unit-group world owning its units (or world 0 when the maps don't
    // align); the masters' per-partition client sockets stay in world 0.
    let partitions = sys.master.partitions.max(1);
    for k in 1..partitions {
        let world = partition_world(k, partitions, sys.units, cfg.groups);
        for i in 0..sys.coord_nodes {
            placement.insert(Addr::new(format!("p{k}-{}", coord_addr(i))), world);
        }
        for m in 0..sys.masters {
            placement.insert(Addr::new(format!("{}-zk-p{k}", master_addr(m))), 0);
        }
    }
    for name in &cfg.clients {
        placement.insert(Addr::new(name.as_str()), 0);
    }
    let (topology, _) = Topology::upper_switched(sys.hosts, sys.disks, sys.fanin);
    let host_ids: Vec<_> = topology.hosts().collect();
    for u in 0..sys.units {
        let world = world_of_unit(u, sys.units, cfg.groups);
        for &h in &host_ids {
            placement.insert(unit_host_addr(UnitId(u), h), world);
        }
    }
    Arc::new(placement)
}

/// Starts the per-world telemetry pipeline at `plan.start`: a gauge
/// publisher (disk residency + network counters) registered *before* the
/// scraper at the same cadence, exactly like the single-world harness.
fn install_telemetry(
    sim: &Sim,
    net: &Network,
    runtimes: &[FabricRuntime],
    plan: Option<TelemetryPlan>,
) -> Rc<RefCell<Option<Scraper>>> {
    let slot: Rc<RefCell<Option<Scraper>>> = Rc::new(RefCell::new(None));
    let Some(plan) = plan else { return slot };
    let runtimes = runtimes.to_vec();
    let net = net.clone();
    let slot2 = slot.clone();
    sim.schedule_at(plan.start, move |sim| {
        let interval = plan.scraper.interval;
        sim.every(interval, interval, move |sim| {
            for rt in &runtimes {
                rt.publish_residency(sim);
            }
            net.publish_metrics(sim);
        });
        *slot2.borrow_mut() = Some(Scraper::start(sim, plan.scraper.clone()));
    });
    slot
}

/// Builds the control world: coordination cluster, Masters and clients.
fn build_control_world(
    seed: u64,
    cfg: &ShardedPodConfig,
    placement: Arc<FastMap<Addr, usize>>,
    lookahead: Arc<LookaheadMatrix>,
    traffic: Option<Arc<TrafficMatrix>>,
    tracer: RequestTracer,
) -> (PodWorld, Vec<UStoreClient>) {
    let sys = &cfg.system;
    let sim = Sim::new(world_seed(seed, 0));
    sim.with_trace(|t| t.set_min_level(cfg.trace_level));
    sim.set_reqtracer(tracer);
    let net = Network::new(sys.net.clone());
    net.enable_shard_routing_with_lookahead(0, placement, lookahead);
    if let Some(m) = traffic {
        net.set_traffic_matrix(m);
    }
    let net2 = net.clone();
    sim.on_teardown(move || net2.teardown());

    let coord_addrs: Vec<Addr> = (0..sys.coord_nodes).map(coord_addr).collect();
    let coord: Vec<CoordServer> = (0..sys.coord_nodes)
        .map(|i| CoordServer::new(&sim, &net, i, coord_addrs.clone(), CoordConfig::default()))
        .collect();
    // Metadata-partition replica groups whose placement falls back to the
    // control world (misaligned partition/world maps).
    let partitions = sys.master.partitions.max(1);
    let coord_groups: Vec<CoordGroup> = (1..partitions)
        .filter(|&k| partition_world(k, partitions, sys.units, cfg.groups) == 0)
        .map(|k| CoordGroup::new(&sim, &net, k, &coord_addrs, CoordConfig::default()))
        .collect();
    let unit_confs: Vec<_> = (0..sys.units)
        .map(|u| unit_conf_for(UnitId(u), sys))
        .collect();
    let master_addrs: Vec<Addr> = (0..sys.masters).map(master_addr).collect();
    let masters: Vec<Master> = master_addrs
        .iter()
        .map(|a| {
            Master::new(
                &sim,
                &net,
                a.clone(),
                coord_addrs.clone(),
                unit_confs.clone(),
                sys.master.clone(),
            )
        })
        .collect();
    let clients: Vec<UStoreClient> = cfg
        .clients
        .iter()
        .map(|name| {
            UStoreClient::new(
                &net,
                Addr::new(name.as_str()),
                master_addrs.clone(),
                sys.clientlib.clone(),
            )
        })
        .collect();
    let scraper = install_telemetry(&sim, &net, &[], cfg.telemetry.clone());
    (
        PodWorld {
            id: 0,
            sim,
            net,
            runtimes: Vec::new(),
            endpoints: Vec::new(),
            controllers: Vec::new(),
            coord,
            coord_groups,
            masters,
            scraper,
        },
        clients,
    )
}

/// Builds unit-group world `id` hosting units `lo..hi`.
#[allow(clippy::too_many_arguments)]
fn build_unit_world(
    id: usize,
    seed: u64,
    sys: &SystemConfig,
    groups: u32,
    lo: u32,
    hi: u32,
    placement: Arc<FastMap<Addr, usize>>,
    lookahead: Arc<LookaheadMatrix>,
    telemetry: Option<TelemetryPlan>,
    trace_level: TraceLevel,
    traffic: Option<Arc<TrafficMatrix>>,
    tracer: RequestTracer,
) -> PodWorld {
    let sim = Sim::new(world_seed(seed, id));
    sim.with_trace(|t| t.set_min_level(trace_level));
    sim.set_reqtracer(tracer);
    let net = Network::new(sys.net.clone());
    net.enable_shard_routing_with_lookahead(id, placement, lookahead);
    if let Some(m) = traffic {
        net.set_traffic_matrix(m);
    }
    let net2 = net.clone();
    sim.on_teardown(move || net2.teardown());
    // Metadata-partition replica groups co-located with this world's
    // units: the partition's log lives next to the data it describes.
    let partitions = sys.master.partitions.max(1);
    let coord_addrs: Vec<Addr> = (0..sys.coord_nodes).map(coord_addr).collect();
    let coord_groups: Vec<CoordGroup> = (1..partitions)
        .filter(|&k| partition_world(k, partitions, sys.units, groups) == id)
        .map(|k| CoordGroup::new(&sim, &net, k, &coord_addrs, CoordConfig::default()))
        .collect();
    let master_addrs: Vec<Addr> = (0..sys.masters).map(master_addr).collect();
    let mut runtimes = Vec::new();
    let mut endpoints = Vec::new();
    let mut controllers = Vec::new();
    for u in lo..hi {
        let unit = UnitId(u);
        let (topology, switch_config) = Topology::upper_switched(sys.hosts, sys.disks, sys.fanin);
        let runtime = FabricRuntime::new(&sim, topology, switch_config, sys.runtime.clone());
        for h in runtime.host_ids() {
            let rpc = RpcNode::new(&net, unit_host_addr(unit, h));
            if h.0 < 2 {
                controllers.push(Controller::new(unit, rpc.clone(), runtime.clone()));
            }
            endpoints.push(Endpoint::new(
                &sim,
                unit,
                h,
                rpc,
                runtime.clone(),
                master_addrs.clone(),
                sys.endpoint.clone(),
            ));
        }
        runtimes.push(runtime);
    }
    let scraper = install_telemetry(&sim, &net, &runtimes, telemetry);
    PodWorld {
        id,
        sim,
        net,
        runtimes,
        endpoints,
        controllers,
        coord: Vec::new(),
        coord_groups,
        masters: Vec::new(),
        scraper,
    }
}

/// A sharded UStore pod: the coordinator plus control-world handles the
/// driver can interact with between epochs (clients, masters).
pub struct ShardedPod {
    coordinator: ShardCoordinator<Envelope>,
    /// The control world's engine (the driver's clock: issue client calls
    /// against this, then [`ShardedPod::run_for`] to execute them).
    pub sim: Sim,
    /// The control world's network.
    pub net: Network,
    /// Master processes (control world).
    pub masters: Vec<Master>,
    /// Clients created at build time, in `cfg.clients` order.
    pub clients: Vec<UStoreClient>,
    profiler: Profiler,
    traffic: Option<Arc<TrafficMatrix>>,
    tracer: RequestTracer,
}

impl fmt::Debug for ShardedPod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedPod")
            .field("now", &self.coordinator.now())
            .field("epochs", &self.coordinator.epochs())
            .finish()
    }
}

impl ShardedPod {
    /// Builds the pod: the control world and any unit-group worlds that
    /// land on shard 0 are constructed on the calling thread; the rest
    /// are constructed on their worker threads (round-robin assignment of
    /// unit-group worlds over shards).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate shape (`groups` 0 or > units, `shards` 0)
    /// or a zero network base latency (no lookahead bound).
    pub fn build(seed: u64, cfg: &ShardedPodConfig) -> ShardedPod {
        let sys = &cfg.system;
        assert!(sys.units >= 1, "need at least one deploy unit");
        assert!(
            cfg.groups >= 1 && cfg.groups <= sys.units,
            "groups must be in 1..=units"
        );
        assert!(cfg.shards >= 1, "need at least one shard");
        let lookahead = sys.net.base_latency;
        assert!(
            lookahead > Duration::ZERO,
            "sharded execution needs a positive network base latency as lookahead"
        );

        let world_count = 1 + cfg.groups as usize;
        let profiler = if cfg.profile {
            Profiler::on(world_count)
        } else {
            Profiler::off()
        };
        let traffic = cfg
            .profile
            .then(|| Arc::new(TrafficMatrix::new(world_count)));
        let tracer = match &cfg.trace {
            Some(plan) => RequestTracer::on(plan.sample_every, plan.exemplars),
            None => RequestTracer::off(),
        };

        let placement = build_placement(cfg);
        // The pod's cross-world traffic is control-plane RPC only: unit
        // worlds talk to the Masters/coordination/clients in world 0 and
        // never to each other (clients reach EndPoints via world 0 as
        // well). The lookahead matrix encodes exactly that star, so the
        // adaptive scheduler never lets one unit world's horizon
        // constrain a sibling's. With a partitioned Master the partition
        // map is fed in as well: unit worlds sharing a metadata partition
        // get direct (non-star) edges, declaring the coupling their
        // shared replicated log implies. Reachability is a capability,
        // not a schedule — a partition map that adds no such pairs (e.g.
        // one partition per world) leaves the star untouched.
        let partitions = sys.master.partitions.max(1);
        let units = sys.units;
        let groups = cfg.groups;
        let partition_of_world = move |w: usize| -> Option<u32> {
            if w == 0 || partitions == 1 {
                return None;
            }
            let per = units_per_group(units, groups);
            let lo = (w as u32 - 1) * per;
            let hi = ((w as u32) * per).min(units);
            let router = crate::meta::MetaRouter::new(partitions, units);
            let p = router.partition_of_unit(UnitId(lo));
            (lo..hi)
                .all(|u| router.partition_of_unit(UnitId(u)) == p)
                .then_some(p)
        };
        let matrix = Arc::new(LookaheadMatrix::from_reachability(
            world_count,
            lookahead,
            |src, dst| {
                if src == 0 || dst == 0 {
                    return true;
                }
                matches!(
                    (partition_of_world(src), partition_of_world(dst)),
                    (Some(a), Some(b)) if a == b
                )
            },
        ));
        let (control, clients) = build_control_world(
            seed,
            cfg,
            placement.clone(),
            matrix.clone(),
            traffic.clone(),
            tracer.clone(),
        );
        let sim = control.sim.clone();
        let net = control.net.clone();
        let masters = control.masters.clone();

        let mut local: Vec<(usize, Box<dyn ShardWorld<Msg = Envelope>>)> =
            vec![(0, Box::new(control))];
        let mut remote: Vec<Vec<(usize, WorldBuilder<Envelope>)>> =
            (1..cfg.shards).map(|_| Vec::new()).collect();
        let per = units_per_group(sys.units, cfg.groups);
        for g in 0..cfg.groups {
            let id = 1 + g as usize;
            let lo = g * per;
            let hi = ((g + 1) * per).min(sys.units);
            let shard = (g as usize) % cfg.shards;
            if shard == 0 {
                local.push((
                    id,
                    Box::new(build_unit_world(
                        id,
                        seed,
                        sys,
                        cfg.groups,
                        lo,
                        hi,
                        placement.clone(),
                        matrix.clone(),
                        cfg.telemetry.clone(),
                        cfg.trace_level,
                        traffic.clone(),
                        tracer.clone(),
                    )),
                ));
            } else {
                let sys = sys.clone();
                let groups = cfg.groups;
                let placement = placement.clone();
                let matrix = matrix.clone();
                let telemetry = cfg.telemetry.clone();
                let trace_level = cfg.trace_level;
                let traffic = traffic.clone();
                let tracer = tracer.clone();
                remote[shard - 1].push((
                    id,
                    Box::new(move || {
                        Box::new(build_unit_world(
                            id,
                            seed,
                            &sys,
                            groups,
                            lo,
                            hi,
                            placement,
                            matrix,
                            telemetry,
                            trace_level,
                            traffic,
                            tracer,
                        )) as Box<dyn ShardWorld<Msg = Envelope>>
                    }) as WorldBuilder<Envelope>,
                ));
            }
        }

        let coordinator = ShardCoordinator::with_matrix(matrix, local, remote, profiler.clone());
        ShardedPod {
            coordinator,
            sim,
            net,
            masters,
            clients,
            profiler,
            traffic,
            tracer,
        }
    }

    /// The merged clock (barrier reached so far).
    pub fn now(&self) -> SimTime {
        self.coordinator.now()
    }

    /// Runs every world to `deadline` through adaptive epoch windows.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.coordinator.run_until(deadline);
    }

    /// Runs for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.coordinator.run_for(d);
    }

    /// Epoch windows executed so far.
    pub fn epochs(&self) -> u64 {
        self.coordinator.epochs()
    }

    /// Inner synchronization rounds executed so far (several per window;
    /// see [`ShardCoordinator::sync_rounds`]).
    pub fn sync_rounds(&self) -> u64 {
        self.coordinator.sync_rounds()
    }

    /// Cross-world messages exchanged so far.
    pub fn cross_messages(&self) -> u64 {
        self.coordinator.cross_messages()
    }

    /// The currently active master, if any.
    pub fn active_master(&self) -> Option<&Master> {
        self.masters.iter().find(|m| m.is_active())
    }

    /// Wall-clock profiler snapshot (phase slabs, epoch statistics,
    /// thread tracks). `None` unless built with `profile: true` (or the
    /// crate was compiled without `wallprof`). Take it after the last
    /// `run_until` so no worker is mid-epoch.
    pub fn prof_snapshot(&self) -> Option<ProfSnapshot> {
        self.profiler.snapshot()
    }

    /// Cross-world traffic matrix snapshot. `None` unless built with
    /// `profile: true`.
    pub fn traffic_snapshot(&self) -> Option<TrafficSnapshot> {
        self.traffic.as_ref().map(|m| m.snapshot())
    }

    /// Request-lifecycle trace snapshot (per-stage TTFB attribution,
    /// sampled traces, slowest exemplars). `None` unless built with
    /// `trace: Some(..)` (or the crate was compiled without `reqtrace`).
    /// Take it after the last `run_until` so no request is mid-flight on
    /// a worker.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.tracer.snapshot()
    }

    /// Finalizes every world and returns their telemetry in world-id
    /// order.
    pub fn finalize(self) -> Vec<WorldTelemetry> {
        self.coordinator
            .finalize()
            .into_iter()
            .map(|(id, t)| {
                let t = t
                    .downcast::<WorldTelemetry>()
                    .expect("pod world returns WorldTelemetry");
                debug_assert_eq!(t.world, id);
                *t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use ustore_net::BlockDevice;
    use ustore_sim::Phase;

    fn pod_cfg(units: u32, groups: u32, shards: usize, clients: u32) -> ShardedPodConfig {
        ShardedPodConfig {
            system: SystemConfig {
                units,
                ..SystemConfig::default()
            },
            groups,
            shards,
            clients: (0..clients).map(|c| format!("app-{c}")).collect(),
            telemetry: None,
            trace_level: TraceLevel::Warn,
            profile: false,
            trace: None,
        }
    }

    #[test]
    fn sharded_pod_brings_up_and_serves_cross_world_io() {
        let mut pod = ShardedPod::build(2001, &pod_cfg(4, 2, 2, 1));
        pod.run_until(SimTime::from_secs(15));
        assert!(pod.active_master().is_some(), "master elected");
        assert!(pod.cross_messages() > 0, "heartbeats crossed worlds");

        // Allocate, mount and do a write/read round trip: every hop
        // (client → master → controller/endpoint → disk) crosses worlds.
        let client = pod.clients[0].clone();
        let info = Rc::new(RefCell::new(None));
        let i2 = info.clone();
        client.allocate(&pod.sim, "svc", 1 << 30, move |_, r| {
            *i2.borrow_mut() = Some(r.expect("allocate"));
        });
        pod.run_for(Duration::from_secs(10));
        let info = info.borrow_mut().take().expect("allocation served");

        let mounted = Rc::new(RefCell::new(None));
        let m2 = mounted.clone();
        client.mount(&pod.sim, info.name, move |_, r| {
            *m2.borrow_mut() = Some(r.expect("mount"));
        });
        pod.run_for(Duration::from_secs(15));
        let mounted = mounted.borrow_mut().take().expect("mount served");

        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let m3 = mounted.clone();
        mounted.write(
            &pod.sim,
            4096,
            b"cold bits".to_vec(),
            Box::new(move |sim, r| {
                r.expect("write");
                m3.read(
                    sim,
                    4096,
                    9,
                    Box::new(move |_, r| {
                        assert_eq!(r.expect("read"), b"cold bits".to_vec());
                        o.set(true);
                    }),
                );
            }),
        );
        pod.run_for(Duration::from_secs(10));
        assert!(ok.get(), "cross-world IO round trip completed");
    }

    #[test]
    fn world_telemetry_identical_across_shard_counts() {
        let run = |shards: usize| -> Vec<WorldTelemetry> {
            let mut pod = ShardedPod::build(2002, &pod_cfg(4, 4, shards, 2));
            pod.run_until(SimTime::from_secs(15));
            assert!(pod.active_master().is_some());
            pod.run_for(Duration::from_secs(5));
            pod.finalize()
        };
        let one = run(1);
        assert_eq!(one.len(), 5, "control world + 4 unit worlds");
        for shards in [2, 4] {
            let n = run(shards);
            for (a, b) in one.iter().zip(&n) {
                assert_eq!(a.world, b.world);
                assert_eq!(a.events, b.events, "world {} events differ", a.world);
                assert_eq!(
                    a.metrics_json, b.metrics_json,
                    "world {} metrics differ (shards={shards})",
                    a.world
                );
                assert_eq!(
                    a.spans_json, b.spans_json,
                    "world {} spans differ (shards={shards})",
                    a.world
                );
            }
        }
    }

    #[test]
    fn profiled_pod_reports_phases_and_traffic() {
        let mut cfg = pod_cfg(4, 2, 2, 1);
        cfg.profile = true;
        let mut pod = ShardedPod::build(2003, &cfg);
        pod.run_until(SimTime::from_secs(15));
        assert!(pod.cross_messages() > 0);
        if !Profiler::compiled_in() {
            assert!(pod.prof_snapshot().is_none());
            return;
        }
        let prof = pod.prof_snapshot().expect("profiled build snapshots");
        assert_eq!(prof.worlds.len(), 3, "control + 2 unit worlds");
        assert_eq!(prof.epochs, pod.epochs());
        assert!(prof.lookahead_ns > 0);
        for w in &prof.worlds {
            assert!(
                w.phase_ns[Phase::Execute as usize] > 0,
                "world {} never executed",
                w.world
            );
            assert!(w.epochs > 0);
        }
        // Worker thread + coordinator each own a track.
        assert_eq!(prof.tracks.len(), 2);
        let traffic = pod.traffic_snapshot().expect("traffic matrix attached");
        assert_eq!(traffic.total_messages(), pod.cross_messages());
        assert!(traffic.busiest().is_some());
        // An unprofiled pod reports neither.
        let mut plain = ShardedPod::build(2003, &pod_cfg(4, 2, 2, 1));
        plain.run_until(SimTime::from_secs(1));
        assert!(plain.prof_snapshot().is_none());
        assert!(plain.traffic_snapshot().is_none());
    }

    #[test]
    fn traced_pod_attributes_request_stages() {
        let mut cfg = pod_cfg(4, 2, 2, 1);
        cfg.trace = Some(TracePlan {
            sample_every: 1,
            exemplars: 4,
        });
        let mut pod = ShardedPod::build(2004, &cfg);
        pod.run_until(SimTime::from_secs(15));
        assert!(pod.active_master().is_some(), "master elected");

        let client = pod.clients[0].clone();
        let info = Rc::new(RefCell::new(None));
        let i2 = info.clone();
        client.allocate(&pod.sim, "svc", 1 << 30, move |_, r| {
            *i2.borrow_mut() = Some(r.expect("allocate"));
        });
        pod.run_for(Duration::from_secs(10));
        let info = info.borrow_mut().take().expect("allocation served");

        let mounted = Rc::new(RefCell::new(None));
        let m2 = mounted.clone();
        client.mount(&pod.sim, info.name, move |_, r| {
            *m2.borrow_mut() = Some(r.expect("mount"));
        });
        pod.run_for(Duration::from_secs(15));
        let mounted = mounted.borrow_mut().take().expect("mount served");

        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let m3 = mounted.clone();
        mounted.write(
            &pod.sim,
            4096,
            b"trace me".to_vec(),
            Box::new(move |sim, r| {
                r.expect("write");
                m3.read(
                    sim,
                    4096,
                    8,
                    Box::new(move |_, r| {
                        r.expect("read");
                        o.set(true);
                    }),
                );
            }),
        );
        pod.run_for(Duration::from_secs(10));
        assert!(ok.get(), "traced IO round trip completed");

        if !RequestTracer::compiled_in() {
            assert!(pod.trace_snapshot().is_none());
            return;
        }
        let snap = pod.trace_snapshot().expect("traced build snapshots");
        assert!(snap.seen >= 2, "write + read completed under trace");
        assert_eq!(snap.live_at_end, 0, "no request left mid-flight");
        let worst = snap.worst().expect("exemplar retained");
        assert!(worst.ttfb_ns > 0);
        assert!(
            worst.attributed_ns > 0,
            "stage attribution covers the worst request"
        );
        // Every completed request crossed the network at least twice.
        for k in &snap.kinds {
            if k.completed > 0 {
                assert!(
                    k.stages[ustore_sim::reqtrace::Stage::NetTransit as usize].sum() > 0,
                    "net transit attributed for {:?}",
                    k.kind
                );
            }
        }
        // An untraced pod reports nothing.
        let mut plain = ShardedPod::build(2004, &pod_cfg(4, 2, 2, 1));
        plain.run_until(SimTime::from_secs(1));
        assert!(plain.trace_snapshot().is_none());
    }

    #[test]
    fn placement_rules() {
        let cfg = pod_cfg(8, 4, 2, 1);
        assert_eq!(world_of_unit(0, 8, 4), 1);
        assert_eq!(world_of_unit(1, 8, 4), 1);
        assert_eq!(world_of_unit(2, 8, 4), 2);
        assert_eq!(world_of_unit(7, 8, 4), 4);
        let placement = build_placement(&cfg);
        assert_eq!(placement.get(&master_addr(0)), Some(&0));
        assert_eq!(placement.get(&coord_addr(0)), Some(&0));
        assert_eq!(placement.get(&Addr::new("app-0")), Some(&0));
        assert_eq!(
            placement.get(&unit_host_addr(UnitId(0), ustore_fabric::HostId(0))),
            Some(&1)
        );
        assert_eq!(
            placement.get(&unit_host_addr(UnitId(7), ustore_fabric::HostId(3))),
            Some(&4)
        );
    }
}
