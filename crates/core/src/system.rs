//! Whole-system harness: brings up a complete UStore deployment in one
//! simulator and provides the failure-injection controls the experiments
//! need.
//!
//! A default [`UStoreSystem`] mirrors the paper's prototype (§V-B): one
//! deploy unit of 16 disks and 4 hosts (upper-switched fabric), a 5-node
//! coordination cluster, two Master processes in active/standby, an
//! EndPoint per host, and two Controllers on the first two hosts.

use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use ustore_consensus::{CoordConfig, CoordGroup, CoordServer};
use ustore_fabric::{DiskId, FabricRuntime, HostId, RuntimeConfig, Topology};
use ustore_net::{Addr, NetConfig, Network, RpcNode};
use ustore_sim::{Scraper, ScraperConfig, Sim, TraceLevel};

use crate::clientlib::{ClientLibConfig, UStoreClient};
use crate::controller::Controller;
use crate::endpoint::{Endpoint, EndpointConfig};
use crate::ids::UnitId;
use crate::master::{Master, MasterConfig, UnitConf};
use crate::watchdog::{HealthWatchdog, WatchdogConfig};

/// Deployment shape.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of deploy units (§IV: "one Master and a number of deploy
    /// units").
    pub units: u32,
    /// Hosts per deploy unit (power of two for the upper-switched fabric).
    pub hosts: u32,
    /// Disks per deploy unit.
    pub disks: u32,
    /// Hub fan-in.
    pub fanin: usize,
    /// Coordination cluster size.
    pub coord_nodes: u32,
    /// Master processes.
    pub masters: u32,
    /// Network parameters.
    pub net: NetConfig,
    /// Fabric/hardware parameters.
    pub runtime: RuntimeConfig,
    /// EndPoint parameters.
    pub endpoint: EndpointConfig,
    /// Master parameters.
    pub master: MasterConfig,
    /// ClientLib parameters for clients created by the harness.
    pub clientlib: ClientLibConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            units: 1,
            hosts: 4,
            disks: 16,
            fanin: 4,
            coord_nodes: 5,
            masters: 2,
            net: NetConfig::default(),
            runtime: RuntimeConfig::default(),
            endpoint: EndpointConfig::default(),
            master: MasterConfig::default(),
            clientlib: ClientLibConfig::default(),
        }
    }
}

/// A fully wired UStore deployment inside one simulator.
pub struct UStoreSystem {
    /// The simulator everything runs on.
    pub sim: Sim,
    /// The shared network.
    pub net: Network,
    /// The first deploy unit's hardware (compatibility accessor; see
    /// [`UStoreSystem::runtimes`] for all units).
    pub runtime: FabricRuntime,
    /// Hardware of every deploy unit, indexed by unit id.
    pub runtimes: Vec<FabricRuntime>,
    /// Coordination cluster replicas.
    pub coord: Vec<CoordServer>,
    /// Per-partition metadata replica groups (partitions 1.. of
    /// `config.master.partitions`; empty for a single-partition Master).
    pub partition_groups: Vec<CoordGroup>,
    /// Master processes (index 0 usually becomes active first).
    pub masters: Vec<Master>,
    /// EndPoints across all units.
    pub endpoints: Vec<Endpoint>,
    /// Controllers across all units (two per unit: primary, backup).
    pub controllers: Vec<Rc<Controller>>,
    config: SystemConfig,
}

impl fmt::Debug for UStoreSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UStoreSystem")
            .field("hosts", &self.endpoints.len())
            .field("masters", &self.masters.len())
            .finish()
    }
}

/// Address of host `h`'s machine (EndPoint + possibly Controller).
/// Unit 0 keeps the short `host-N` form.
pub fn host_addr(h: HostId) -> Addr {
    Addr::new(format!("host-{}", h.0))
}

/// Address of unit `u`'s host `h` machine.
pub fn unit_host_addr(u: UnitId, h: HostId) -> Addr {
    if u.0 == 0 {
        host_addr(h)
    } else {
        Addr::new(format!("u{}-host-{}", u.0, h.0))
    }
}

/// Address of master process `i`.
pub fn master_addr(i: u32) -> Addr {
    Addr::new(format!("master-{i}"))
}

/// Address of coordination replica `i`.
pub fn coord_addr(i: u32) -> Addr {
    Addr::new(format!("coord-{i}"))
}

/// Unit configuration derived purely from the deployment shape — no live
/// hardware required. Host/disk id order matches the unit's topology
/// iteration order, and disk capacity comes from the configured drive
/// profile, so this is identical to what [`UStoreSystem::build`] derives
/// from a constructed [`FabricRuntime`]. The sharded builder relies on
/// that: its Masters live in a different world than the unit hardware.
pub fn unit_conf_for(unit: UnitId, config: &SystemConfig) -> UnitConf {
    let (topology, _) = Topology::upper_switched(config.hosts, config.disks, config.fanin);
    let capacity = config.runtime.disk_profile.mech.capacity_bytes;
    UnitConf {
        unit,
        hosts: topology
            .hosts()
            .map(|h| (h, unit_host_addr(unit, h)))
            .collect(),
        disks: topology.disks().map(|d| (d, capacity)).collect(),
        controllers: vec![
            unit_host_addr(unit, HostId(0)),
            unit_host_addr(unit, HostId(1)),
        ],
    }
}

impl UStoreSystem {
    /// Builds and starts a deployment. Run the simulator for a few virtual
    /// seconds ([`UStoreSystem::settle`]) before using it: enumeration and
    /// the master election take that long, as they do in reality.
    pub fn build(sim: Sim, config: SystemConfig) -> UStoreSystem {
        assert!(config.units >= 1, "need at least one deploy unit");
        let net = Network::new(config.net.clone());
        // Tearing the simulator down also severs the network/RPC closure
        // tables, so repeated in-process builds don't accumulate heap.
        let net2 = net.clone();
        sim.on_teardown(move || net2.teardown());
        // Coordination cluster.
        let coord_addrs: Vec<Addr> = (0..config.coord_nodes).map(coord_addr).collect();
        let coord: Vec<CoordServer> = (0..config.coord_nodes)
            .map(|i| CoordServer::new(&sim, &net, i, coord_addrs.clone(), CoordConfig::default()))
            .collect();
        // One extra replica group per metadata partition beyond the first
        // (partition 0 is the base cluster itself).
        let partition_groups: Vec<CoordGroup> = (1..config.master.partitions.max(1))
            .map(|k| CoordGroup::new(&sim, &net, k, &coord_addrs, CoordConfig::default()))
            .collect();
        // Hardware + SysConf, one entry per deploy unit.
        let mut runtimes = Vec::new();
        let mut unit_confs = Vec::new();
        for u in 0..config.units {
            let unit = UnitId(u);
            let (topology, switch_config) =
                Topology::upper_switched(config.hosts, config.disks, config.fanin);
            let runtime = FabricRuntime::new(&sim, topology, switch_config, config.runtime.clone());
            unit_confs.push(unit_conf_for(unit, &config));
            runtimes.push(runtime);
        }
        // Masters manage every unit.
        let master_addrs: Vec<Addr> = (0..config.masters).map(master_addr).collect();
        let masters: Vec<Master> = master_addrs
            .iter()
            .map(|a| {
                Master::new(
                    &sim,
                    &net,
                    a.clone(),
                    coord_addrs.clone(),
                    unit_confs.clone(),
                    config.master.clone(),
                )
            })
            .collect();
        // Per-host machines: one RPC node each, serving EndPoint (and the
        // first two per unit also serve a Controller).
        let mut endpoints = Vec::new();
        let mut controllers = Vec::new();
        for (u, runtime) in runtimes.iter().enumerate() {
            let unit = UnitId(u as u32);
            for h in runtime.host_ids() {
                let rpc = RpcNode::new(&net, unit_host_addr(unit, h));
                if h.0 < 2 {
                    controllers.push(Controller::new(unit, rpc.clone(), runtime.clone()));
                }
                endpoints.push(Endpoint::new(
                    &sim,
                    unit,
                    h,
                    rpc,
                    runtime.clone(),
                    master_addrs.clone(),
                    config.endpoint.clone(),
                ));
            }
        }
        UStoreSystem {
            sim,
            net,
            runtime: runtimes[0].clone(),
            runtimes,
            coord,
            partition_groups,
            masters,
            endpoints,
            controllers,
            config,
        }
    }

    /// Replicated-log length of every metadata partition, in partition
    /// order (index 0 = the base cluster, which also carries elections and
    /// sessions; indices 1.. = the per-partition groups).
    pub fn partition_log_lens(&self) -> Vec<u64> {
        let base = self
            .coord
            .iter()
            .map(|s| s.applied_len())
            .max()
            .unwrap_or(0);
        std::iter::once(base)
            .chain(self.partition_groups.iter().map(|g| g.log_len()))
            .collect()
    }

    /// Builds the paper's prototype deployment with default parameters.
    pub fn prototype(seed: u64) -> UStoreSystem {
        UStoreSystem::build(Sim::new(seed), SystemConfig::default())
    }

    /// Runs the simulator until bring-up completes (enumeration + master
    /// election + first heartbeats).
    pub fn settle(&self) {
        self.sim.run_until(self.sim.now() + Duration::from_secs(15));
    }

    /// Creates a connected storage client at `name`.
    pub fn client(&self, name: &str) -> UStoreClient {
        let masters: Vec<Addr> = (0..self.config.masters).map(master_addr).collect();
        UStoreClient::new(
            &self.net,
            Addr::new(name),
            masters,
            self.config.clientlib.clone(),
        )
    }

    /// The currently active master, if any.
    pub fn active_master(&self) -> Option<&Master> {
        self.masters.iter().find(|m| m.is_active())
    }

    /// Kills a host: the machine drops off the network, its USB trees
    /// disappear, and (if it carried the active microcontroller) the
    /// control plane fails over. The Master's heartbeat sweeper will
    /// notice and evacuate its disks.
    pub fn kill_host(&self, h: HostId) {
        self.kill_unit_host(UnitId(0), h);
    }

    /// Kills a host of a specific deploy unit.
    pub fn kill_unit_host(&self, unit: UnitId, h: HostId) {
        self.sim
            .trace(TraceLevel::Warn, "system", format!("killing {unit} {h}"));
        // Open the failover span tree at the instant of failure. The
        // detection child stays open until the Master's sweeper declares
        // the host dead, so its duration is the paper's detection time.
        let root = self.sim.span_start("system", "failover");
        self.sim.span_attr(root, "victim", format!("{unit}/{h}"));
        self.sim.span_child(root, "master", "failover.detection");
        self.net.set_down(&self.sim, &unit_host_addr(unit, h));
        self.runtimes[unit.0 as usize].host_failed(&self.sim, h);
        if let Some(ep) = self
            .endpoints
            .iter()
            .find(|e| e.unit() == unit && e.host() == h)
        {
            ep.pause();
        }
    }

    /// Repairs a previously killed host.
    pub fn restore_host(&self, h: HostId) {
        self.restore_unit_host(UnitId(0), h);
    }

    /// Repairs a previously killed host of a specific unit.
    pub fn restore_unit_host(&self, unit: UnitId, h: HostId) {
        self.sim
            .trace(TraceLevel::Info, "system", format!("restoring {unit} {h}"));
        self.net.set_up(&self.sim, &unit_host_addr(unit, h));
        self.runtimes[unit.0 as usize].host_repaired(&self.sim, h);
        if let Some(ep) = self
            .endpoints
            .iter()
            .find(|e| e.unit() == unit && e.host() == h)
        {
            ep.resume(&self.sim);
        }
    }

    /// Kills a master process (service socket, coordination sessions —
    /// including its per-partition metadata sessions).
    pub fn kill_master(&self, i: usize) {
        self.net.set_down(&self.sim, &master_addr(i as u32));
        self.net.set_down(
            &self.sim,
            &Addr::new(format!("{}-zk", master_addr(i as u32))),
        );
        for k in 1..self.config.master.partitions.max(1) {
            self.net.set_down(
                &self.sim,
                &Addr::new(format!("{}-zk-p{k}", master_addr(i as u32))),
            );
        }
        self.masters[i].pause();
    }

    /// Starts the telemetry pipeline: a gauge publisher (disk residency +
    /// network counters, refreshed right before every sample) and a
    /// [`Scraper`] that records the whole registry into ring-buffered time
    /// series at `config.interval`.
    ///
    /// The publisher timer is registered *before* the scraper at the same
    /// cadence, so each scrape observes freshly published gauges (the
    /// simulator fires same-instant timers in registration order).
    pub fn start_telemetry(&self, config: ScraperConfig) -> Scraper {
        let runtimes = self.runtimes.clone();
        let net = self.net.clone();
        self.sim
            .every(config.interval, config.interval, move |sim| {
                for rt in &runtimes {
                    rt.publish_residency(sim);
                }
                net.publish_metrics(sim);
            });
        Scraper::start(&self.sim, config)
    }

    /// Installs the Master-side health watchdog over `scraper`'s series:
    /// every disk and every host-side link of the deployment is watched
    /// for seek-latency drift, uncorrectable-read bursts, link saturation
    /// and re-enumeration storms. Returns `None` if no master is active
    /// yet (call [`UStoreSystem::settle`] first).
    ///
    /// Disk and host component names repeat across deploy units (every
    /// unit has a `disk0`); the watchdog watches the first unit that
    /// claims each name, which is exact for single-unit deployments.
    pub fn install_watchdog(
        &self,
        scraper: &Scraper,
        config: WatchdogConfig,
    ) -> Option<HealthWatchdog> {
        let master = self.active_master()?.clone();
        let mut disks = Vec::new();
        let mut seen_disks = std::collections::BTreeSet::new();
        let mut links = Vec::new();
        let mut seen_links = std::collections::BTreeSet::new();
        for (u, rt) in self.runtimes.iter().enumerate() {
            let unit = UnitId(u as u32);
            for d in rt.disk_ids() {
                let name = format!("{d}");
                if seen_disks.insert(name.clone()) {
                    disks.push((name, unit, d));
                }
            }
            for h in rt.host_ids() {
                let name = format!("{h}");
                if seen_links.insert(name.clone()) {
                    links.push(name);
                }
            }
        }
        Some(HealthWatchdog::install(
            scraper, master, disks, links, config,
        ))
    }

    /// All disks currently attached and enumerated somewhere.
    pub fn ready_disks(&self) -> Vec<DiskId> {
        self.runtime
            .disk_ids()
            .into_iter()
            .filter(|d| self.runtime.disk_ready(*d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use ustore_net::BlockDevice;
    use ustore_sim::SimTime;

    use crate::clientlib::Mounted;
    use crate::messages::SpaceInfo;

    fn run_for(s: &UStoreSystem, secs: u64) {
        s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
    }

    fn allocate_blocking(
        s: &UStoreSystem,
        client: &UStoreClient,
        service: &str,
        size: u64,
    ) -> SpaceInfo {
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        client.allocate(&s.sim, service, size, move |_, r| {
            *o.borrow_mut() = Some(r.expect("allocate"));
        });
        run_for(s, 10);
        let info = out.borrow_mut().take().expect("allocation completed");
        info
    }

    fn mount_blocking(s: &UStoreSystem, client: &UStoreClient, info: &SpaceInfo) -> Mounted {
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        client.mount(&s.sim, info.name, move |_, r| {
            *o.borrow_mut() = Some(r.expect("mount"));
        });
        run_for(s, 15);
        let m = out.borrow_mut().take().expect("mount completed");
        m
    }

    #[test]
    fn bring_up_elects_master_and_sees_all_disks() {
        let s = UStoreSystem::prototype(101);
        s.settle();
        assert!(s.active_master().is_some(), "one master active");
        assert_eq!(s.ready_disks().len(), 16);
        let m = s.active_master().expect("active");
        for h in s.runtime.host_ids() {
            assert!(m.host_alive(UnitId(0), h), "{h} alive via heartbeats");
        }
        for d in s.runtime.disk_ids() {
            assert_eq!(m.disk_host(UnitId(0), d), s.runtime.attached_host(d));
        }
    }

    #[test]
    fn allocate_mount_io_roundtrip() {
        let s = UStoreSystem::prototype(102);
        s.settle();
        let client = s.client("app-1");
        let info = allocate_blocking(&s, &client, "backup", 1 << 30);
        assert!(info.host_addr.is_some());
        let mounted = mount_blocking(&s, &client, &info);
        assert_eq!(mounted.capacity(), 1 << 30);
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        let m2 = mounted.clone();
        mounted.write(
            &s.sim,
            4096,
            b"frozen bits".to_vec(),
            Box::new(move |sim, r| {
                r.expect("write");
                m2.read(
                    sim,
                    4096,
                    11,
                    Box::new(move |_, r| {
                        assert_eq!(r.expect("read"), b"frozen bits".to_vec());
                        o.set(true);
                    }),
                );
            }),
        );
        run_for(&s, 10);
        assert!(ok.get());
    }

    #[test]
    fn service_affinity_and_release() {
        let s = UStoreSystem::prototype(103);
        s.settle();
        let client = s.client("app-1");
        let a = allocate_blocking(&s, &client, "hdfs", 1 << 30);
        let b = allocate_blocking(&s, &client, "hdfs", 1 << 30);
        assert_eq!(a.name.disk, b.name.disk, "same service packs on one disk");
        // Release and verify lookup fails.
        let gone = Rc::new(Cell::new(false));
        let g = gone.clone();
        let c2 = client.clone();
        let name = a.name;
        client.release(&s.sim, name, move |sim, r| {
            r.expect("release");
            c2.lookup(sim, name, move |_, r| {
                assert!(matches!(
                    r.unwrap_err(),
                    crate::ClientLibError::Master(crate::MasterError::NoSuchSpace)
                ));
                g.set(true);
            });
        });
        run_for(&s, 10);
        assert!(gone.get());
    }

    #[test]
    fn host_failure_recovers_and_io_continues() {
        let s = UStoreSystem::prototype(104);
        s.settle();
        let client = s.client("app-1");
        let info = allocate_blocking(&s, &client, "svc", 1 << 30);
        let mounted = mount_blocking(&s, &client, &info);
        // Write something before the failure.
        mounted.write(
            &s.sim,
            0,
            b"before".to_vec(),
            Box::new(|_, r| r.expect("write")),
        );
        run_for(&s, 2);
        // Kill the host currently serving the space.
        let victim = s
            .runtime
            .attached_host(info.name.disk)
            .expect("disk attached");
        let t0 = s.sim.now();
        s.kill_host(victim);
        // Issue a read immediately: it must eventually succeed via remount.
        let recovered_at = Rc::new(Cell::new(SimTime::ZERO));
        let r2 = recovered_at.clone();
        mounted.read(
            &s.sim,
            0,
            6,
            Box::new(move |sim, r| {
                assert_eq!(r.expect("read after failover"), b"before".to_vec());
                r2.set(sim.now());
            }),
        );
        run_for(&s, 40);
        let dt = recovered_at.get().saturating_duration_since(t0);
        assert!(recovered_at.get() > SimTime::ZERO, "read completed");
        assert!(
            dt > Duration::from_secs(3) && dt < Duration::from_secs(12),
            "recovery took {dt:?} (paper: 5.8 s)"
        );
        // The disk moved to a live host.
        let new_host = s.runtime.attached_host(info.name.disk).expect("reattached");
        assert_ne!(new_host, victim);
        assert!(
            mounted.remount_count() >= 2,
            "initial mount + failover remount"
        );
    }

    #[test]
    fn master_failover_preserves_metadata() {
        let s = UStoreSystem::prototype(105);
        s.settle();
        let client = s.client("app-1");
        let info = allocate_blocking(&s, &client, "svc", 1 << 30);
        let active_idx = s
            .masters
            .iter()
            .position(|m| m.is_active())
            .expect("active master");
        s.kill_master(active_idx);
        // The standby should take over (session expiry + election) and
        // still know the allocation (reloaded from the coordination
        // service).
        run_for(&s, 20);
        let standby = &s.masters[1 - active_idx];
        assert!(standby.is_active(), "standby became active");
        let found = Rc::new(Cell::new(false));
        let f = found.clone();
        client.lookup(&s.sim, info.name, move |_, r| {
            let got = r.expect("lookup after master failover");
            assert_eq!(got.size, 1 << 30);
            f.set(true);
        });
        run_for(&s, 10);
        assert!(found.get());
    }

    #[test]
    fn idle_disks_spin_down_and_io_wakes_them() {
        let mut cfg = SystemConfig::default();
        cfg.endpoint.idle_spin_down = Duration::from_secs(20);
        cfg.endpoint.idle_check = Duration::from_secs(5);
        let s = UStoreSystem::build(Sim::new(106), cfg);
        s.settle();
        let client = s.client("app-1");
        let info = allocate_blocking(&s, &client, "svc", 1 << 30);
        let mounted = mount_blocking(&s, &client, &info);
        // The disk may have spun down during the slow mount; this write
        // wakes it and resets the idle clock.
        mounted.write(
            &s.sim,
            0,
            vec![1u8; 4096],
            Box::new(|_, r| r.expect("write")),
        );
        run_for(&s, 12);
        let disk = s.runtime.disk(info.name.disk);
        assert_eq!(disk.power_state(), ustore_disk::PowerStateKind::Idle);
        // Wait past the idle threshold: the EndPoint spins it down.
        run_for(&s, 60);
        assert_eq!(
            disk.power_state(),
            ustore_disk::PowerStateKind::Standby,
            "idle disk spun down"
        );
        // IO wakes it (with spin-up latency).
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let o = done_at.clone();
        let d2 = disk.clone();
        let t0 = s.sim.now();
        mounted.read(
            &s.sim,
            0,
            16,
            Box::new(move |sim, r| {
                r.expect("read after wake");
                assert_eq!(d2.power_state(), ustore_disk::PowerStateKind::Idle);
                o.set(sim.now());
            }),
        );
        run_for(&s, 30);
        assert!(done_at.get() > SimTime::ZERO, "read completed");
        assert!(
            done_at.get().saturating_duration_since(t0) >= Duration::from_secs(7),
            "paid spin-up"
        );
    }

    #[test]
    fn service_can_spin_disks_down_remotely() {
        let s = UStoreSystem::prototype(107);
        s.settle();
        let client = s.client("app-1");
        let info = allocate_blocking(&s, &client, "svc", 1 << 30);
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        client.disk_power(&s.sim, info.name.disk, false, move |_, r| {
            r.expect("spin down command");
            d.set(true);
        });
        run_for(&s, 10);
        assert!(done.get());
        assert_eq!(
            s.runtime.disk(info.name.disk).power_state(),
            ustore_disk::PowerStateKind::Standby
        );
    }
}
