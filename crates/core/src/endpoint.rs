//! The UStore EndPoint (§IV-B).
//!
//! One EndPoint runs on every host connected to a deploy unit. It
//! monitors the host's local USB tree and reports health through periodic
//! heartbeats to the Master, and it exposes allocated spaces over the
//! network as iSCSI targets. It also implements the default power-saving
//! policy (§IV-F): spin idle disks down, and back off when a disk cycles
//! too often.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use ustore_disk::PowerStateKind;
use ustore_fabric::{DiskId, FabricIoError, FabricRuntime, HostId};
use ustore_net::{Addr, BlockDevice, BlockError, IscsiServer, ReadCb, RpcNode, WriteCb};
use ustore_sim::{CounterHandle, Sim, SimTime, TraceLevel};
use ustore_usb::{DeviceKind, DeviceState, UsbEvent};

use crate::ids::{SpaceName, UnitId};
use crate::messages::{DiskPowerReq, EndpointAck, ExposeReq, Heartbeat, HeartbeatAck, UnexposeReq};

/// EndPoint tunables.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Heartbeat period to the Master.
    pub heartbeat_interval: Duration,
    /// Time from a disk becoming visible to its targets being exposed
    /// (partition scan + target configuration — Figure 6 part 2).
    pub export_delay: Duration,
    /// Idle time after which a disk spins down (§IV-F).
    pub idle_spin_down: Duration,
    /// How often the idle checker runs.
    pub idle_check: Duration,
    /// Window for counting spin-up events.
    pub spin_cycle_window: Duration,
    /// Spin-ups within the window that trigger threshold doubling.
    pub spin_cycle_limit: usize,
    /// RPC timeout for heartbeats.
    pub rpc_timeout: Duration,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            heartbeat_interval: Duration::from_millis(300),
            export_delay: Duration::from_millis(900),
            idle_spin_down: Duration::from_secs(300),
            idle_check: Duration::from_secs(10),
            spin_cycle_window: Duration::from_secs(600),
            spin_cycle_limit: 3,
            rpc_timeout: Duration::from_millis(400),
        }
    }
}

struct Exposure {
    offset: u64,
    len: u64,
    exported: bool,
}

struct Ep {
    unit: UnitId,
    host: HostId,
    masters: Vec<Addr>,
    master_hint: usize,
    config: EndpointConfig,
    exposures: BTreeMap<SpaceName, Exposure>,
    activity: HashMap<DiskId, Rc<Cell<SimTime>>>,
    spin_ups: HashMap<DiskId, Vec<SimTime>>,
    idle_threshold: HashMap<DiskId, Duration>,
    seq: u64,
    paused: bool,
    /// Ready-disk list for heartbeats, cached against the USB tree's
    /// topology generation — rebuilding it means snapshotting and sorting
    /// the whole tree, which the steady state never needs.
    ready_cache: (u64, Rc<Vec<DiskId>>),
    /// Lazily-resolved heartbeat counter handle (avoids re-rendering the
    /// address label and re-hashing the metric name every beat).
    hb_counter: Option<CounterHandle>,
}

/// One EndPoint process. Shares its host's [`RpcNode`] (serving `ep.*`
/// and the iSCSI protocol).
#[derive(Clone)]
pub struct Endpoint {
    rpc: RpcNode,
    iscsi: Rc<IscsiServer>,
    runtime: FabricRuntime,
    inner: Rc<RefCell<Ep>>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ep = self.inner.borrow();
        f.debug_struct("Endpoint")
            .field("host", &ep.host)
            .field("exposures", &ep.exposures.len())
            .finish()
    }
}

impl Endpoint {
    /// Starts an EndPoint for `host` of `unit` on the host's RPC node.
    pub fn new(
        sim: &Sim,
        unit: UnitId,
        host: HostId,
        rpc: RpcNode,
        runtime: FabricRuntime,
        masters: Vec<Addr>,
        config: EndpointConfig,
    ) -> Endpoint {
        let iscsi = Rc::new(IscsiServer::new(rpc.clone()));
        let ep = Endpoint {
            rpc,
            iscsi,
            runtime: runtime.clone(),
            inner: Rc::new(RefCell::new(Ep {
                unit,
                host,
                masters,
                master_hint: 0,
                config,
                exposures: BTreeMap::new(),
                activity: HashMap::new(),
                spin_ups: HashMap::new(),
                idle_threshold: HashMap::new(),
                seq: 0,
                paused: false,
                ready_cache: (u64::MAX, Rc::new(Vec::new())),
                hb_counter: None,
            })),
        };
        ep.install_handlers();
        // USB monitor: watch the local tree (the paper's `lsusb -t` watcher).
        let e2 = ep.clone();
        runtime
            .usb_host(host)
            .subscribe(move |sim, ev| e2.on_usb_event(sim, ev));
        ep.arm_heartbeat(sim);
        ep.arm_idle_checker(sim);
        ep
    }

    /// The host this EndPoint runs on.
    pub fn host(&self) -> HostId {
        self.inner.borrow().host
    }

    /// The deploy unit this EndPoint serves.
    pub fn unit(&self) -> UnitId {
        self.inner.borrow().unit
    }

    /// The EndPoint's network address.
    pub fn addr(&self) -> Addr {
        self.rpc.addr().clone()
    }

    /// Simulates a process crash (stops heartbeats and exports).
    pub fn pause(&self) {
        self.inner.borrow_mut().paused = true;
    }

    /// Restarts a paused EndPoint.
    pub fn resume(&self, sim: &Sim) {
        self.inner.borrow_mut().paused = false;
        self.arm_heartbeat(sim);
        self.arm_idle_checker(sim);
    }

    /// Targets currently exported.
    pub fn exported_targets(&self) -> Vec<String> {
        self.iscsi.target_names()
    }

    // ---- RPC handlers ------------------------------------------------------

    fn install_handlers(&self) {
        let e = self.clone();
        self.rpc.serve("ep.expose", move |sim, req, responder| {
            let req: &ExposeReq = req.downcast_ref().expect("ExposeReq");
            e.expose(sim, req.name, req.offset, req.len);
            responder.reply(sim, Arc::new(Ok(()) as EndpointAck), 16);
        });
        let e = self.clone();
        self.rpc.serve("ep.unexpose", move |sim, req, responder| {
            let req: &UnexposeReq = req.downcast_ref().expect("UnexposeReq");
            e.unexpose(req.name);
            responder.reply(sim, Arc::new(Ok(()) as EndpointAck), 16);
        });
        let e = self.clone();
        self.rpc.serve("ep.disk_power", move |sim, req, responder| {
            let req: &DiskPowerReq = req.downcast_ref().expect("DiskPowerReq");
            let disk = e.runtime.disk(req.disk);
            if req.up {
                disk.spin_up(sim);
            } else {
                disk.spin_down(sim);
            }
            responder.reply(sim, Arc::new(Ok(()) as EndpointAck), 16);
        });
    }

    /// Records an exposure and exports it if the disk is already visible.
    fn expose(&self, sim: &Sim, name: SpaceName, offset: u64, len: u64) {
        let already = {
            let mut ep = self.inner.borrow_mut();
            let prev = ep.exposures.insert(
                name,
                Exposure {
                    offset,
                    len,
                    exported: false,
                },
            );
            prev.is_some_and(|p| p.exported)
        };
        if already {
            // Re-expose (idempotent): mark exported again.
            self.inner
                .borrow_mut()
                .exposures
                .get_mut(&name)
                .expect("present")
                .exported = true;
            return;
        }
        if self.runtime.disk_ready(name.disk)
            && self.runtime.attached_host(name.disk) == Some(self.host())
        {
            self.schedule_export(sim, name);
        }
    }

    fn unexpose(&self, name: SpaceName) {
        self.inner.borrow_mut().exposures.remove(&name);
        self.iscsi.unexpose(&name.target_name());
    }

    /// Exports after the configured delay (partition scan, tgt reload).
    fn schedule_export(&self, sim: &Sim, name: SpaceName) {
        let delay = self.inner.borrow().config.export_delay;
        // Exports after a failover are part of the remount phase (Fig. 6
        // part 2); parent under it when one is open.
        let span = match sim.find_open_span("failover.remount") {
            Some(p) => sim.span_child(p, "endpoint", "endpoint.export"),
            None => sim.span_start("endpoint", "endpoint.export"),
        };
        sim.span_attr(span, "space", name.to_string());
        let this = self.clone();
        sim.schedule_in(delay, move |sim| {
            let (offset, len, host) = {
                let ep = this.inner.borrow();
                if ep.paused {
                    sim.span_attr(span, "error", "paused");
                    sim.span_end(span);
                    return;
                }
                let Some(x) = ep.exposures.get(&name) else {
                    sim.span_attr(span, "error", "withdrawn");
                    sim.span_end(span);
                    return;
                };
                (x.offset, x.len, ep.host)
            };
            // The disk may have moved away while we waited.
            if this.runtime.attached_host(name.disk) != Some(host)
                || !this.runtime.disk_ready(name.disk)
            {
                sim.span_attr(span, "error", "moved");
                sim.span_end(span);
                return;
            }
            let activity = this.activity_cell(sim, name.disk);
            let spin_ups = this.inner.clone();
            let dev = ExposedSpace {
                runtime: this.runtime.clone(),
                disk: name.disk,
                offset,
                len,
                activity,
                on_spin_up: Box::new(move |sim| {
                    let mut ep = spin_ups.borrow_mut();
                    let now = sim.now();
                    ep.spin_ups.entry(name.disk).or_default().push(now);
                }),
            };
            this.iscsi.expose(name.target_name(), Rc::new(dev));
            if let Some(x) = this.inner.borrow_mut().exposures.get_mut(&name) {
                x.exported = true;
            }
            sim.count(&this.addr().to_string(), "endpoint.exports", 1);
            sim.span_end(span);
            sim.trace(
                TraceLevel::Info,
                "endpoint",
                format!("{}: exported {}", this.addr(), name),
            );
        });
    }

    fn activity_cell(&self, sim: &Sim, d: DiskId) -> Rc<Cell<SimTime>> {
        self.inner
            .borrow_mut()
            .activity
            .entry(d)
            .or_insert_with(|| Rc::new(Cell::new(sim.now())))
            .clone()
    }

    // ---- USB monitor --------------------------------------------------------

    fn on_usb_event(&self, sim: &Sim, ev: UsbEvent) {
        if self.inner.borrow().paused {
            return;
        }
        match ev {
            UsbEvent::Ready(dev) if dev.0 < 100_000 => {
                let d = DiskId(dev.0);
                // Export every recorded exposure for this disk.
                let names: Vec<SpaceName> = self
                    .inner
                    .borrow()
                    .exposures
                    .keys()
                    .filter(|n| n.disk == d)
                    .copied()
                    .collect();
                for n in names {
                    self.schedule_export(sim, n);
                }
            }
            UsbEvent::Detached(dev) if dev.0 < 100_000 => {
                let d = DiskId(dev.0);
                let names: Vec<SpaceName> = self
                    .inner
                    .borrow()
                    .exposures
                    .keys()
                    .filter(|n| n.disk == d)
                    .copied()
                    .collect();
                for n in names {
                    self.iscsi.unexpose(&n.target_name());
                    if let Some(x) = self.inner.borrow_mut().exposures.get_mut(&n) {
                        x.exported = false;
                    }
                }
            }
            _ => {}
        }
    }

    // ---- Heartbeats -----------------------------------------------------------

    fn arm_heartbeat(&self, sim: &Sim) {
        let interval = self.inner.borrow().config.heartbeat_interval;
        let this = self.clone();
        sim.schedule_in(interval, move |sim| {
            if this.inner.borrow().paused {
                return;
            }
            this.send_heartbeat(sim);
            this.arm_heartbeat(sim);
        });
    }

    fn send_heartbeat(&self, sim: &Sim) {
        let (hb, target, timeout) = {
            let mut ep = self.inner.borrow_mut();
            ep.seq += 1;
            let host = ep.host;
            let usb = self.runtime.usb_host(host);
            let gen = usb.topology_gen();
            if ep.ready_cache.0 != gen {
                let ready: Vec<DiskId> = usb
                    .snapshot()
                    .into_iter()
                    .filter(|n| n.kind == DeviceKind::Storage && n.state == DeviceState::Ready)
                    .map(|n| DiskId(n.id.0))
                    .collect();
                ep.ready_cache = (gen, Rc::new(ready));
            }
            let hb = Heartbeat {
                unit: ep.unit,
                host,
                addr: self.rpc.addr().clone(),
                ready_disks: ep.ready_cache.1.as_ref().clone(),
                seq: ep.seq,
            };
            let target = ep.masters[ep.master_hint].clone();
            (hb, target, ep.config.rpc_timeout)
        };
        {
            let mut ep = self.inner.borrow_mut();
            if ep.hb_counter.is_none() {
                ep.hb_counter = Some(sim.counter(self.addr().as_str(), "endpoint.heartbeats_sent"));
            }
            ep.hb_counter
                .as_ref()
                .expect("hb counter initialized")
                .inc();
        }
        let this = self.clone();
        self.rpc.call::<HeartbeatAck>(
            sim,
            &target,
            "master.heartbeat",
            Arc::new(hb),
            200,
            timeout,
            move |_sim, resp| {
                let rotate = !matches!(resp.as_deref(), Ok(HeartbeatAck::Ok));
                if rotate {
                    let mut ep = this.inner.borrow_mut();
                    ep.master_hint = (ep.master_hint + 1) % ep.masters.len();
                }
            },
        );
    }

    // ---- Power management (§IV-F) ---------------------------------------------

    fn arm_idle_checker(&self, sim: &Sim) {
        let interval = self.inner.borrow().config.idle_check;
        let this = self.clone();
        sim.schedule_in(interval, move |sim| {
            if this.inner.borrow().paused {
                return;
            }
            this.check_idle(sim);
            this.arm_idle_checker(sim);
        });
    }

    fn check_idle(&self, sim: &Sim) {
        let host = self.host();
        let now = sim.now();
        // Seed an activity clock for every disk visible on this host, so
        // disks that never see IO also spin down (the paper's default
        // policy covers any idle disk, not just exposed ones).
        let visible: Vec<DiskId> = self
            .runtime
            .usb_host(host)
            .snapshot()
            .into_iter()
            .filter(|n| n.kind == DeviceKind::Storage && n.state == DeviceState::Ready)
            .map(|n| DiskId(n.id.0))
            .collect();
        for d in visible {
            self.activity_cell(sim, d);
        }
        let candidates: Vec<(DiskId, Duration)> = {
            let mut ep = self.inner.borrow_mut();
            let base = ep.config.idle_spin_down;
            let window = ep.config.spin_cycle_window;
            let limit = ep.config.spin_cycle_limit;
            // Adapt thresholds for disks that churn.
            let churning: Vec<DiskId> = ep
                .spin_ups
                .iter_mut()
                .filter_map(|(d, ups)| {
                    ups.retain(|t| now.saturating_duration_since(*t) < window);
                    (ups.len() >= limit).then_some(*d)
                })
                .collect();
            for d in churning {
                let t = {
                    let t = ep.idle_threshold.entry(d).or_insert(base);
                    *t = (*t * 2).min(Duration::from_secs(7200));
                    *t
                };
                ep.spin_ups.remove(&d);
                sim.trace(
                    TraceLevel::Info,
                    "endpoint",
                    format!("{d} cycles too often; idle threshold now {t:?}"),
                );
            }
            ep.activity
                .iter()
                .map(|(d, a)| {
                    let thr = ep.idle_threshold.get(d).copied().unwrap_or(base);
                    (*d, thr, a.get())
                })
                .filter(|(_, thr, last)| now.saturating_duration_since(*last) > *thr)
                .map(|(d, thr, _)| (d, thr))
                .collect()
        };
        for (d, _) in candidates {
            if self.runtime.attached_host(d) == Some(host) {
                let disk = self.runtime.disk(d);
                if disk.power_state() == PowerStateKind::Idle {
                    sim.trace(
                        TraceLevel::Info,
                        "endpoint",
                        format!("spinning down idle {d}"),
                    );
                    disk.spin_down(sim);
                }
            }
        }
    }
}

/// An exposed space: a window of a fabric-attached disk served as a
/// network block device, with activity tracking for power management.
struct ExposedSpace {
    runtime: FabricRuntime,
    disk: DiskId,
    offset: u64,
    len: u64,
    activity: Rc<Cell<SimTime>>,
    on_spin_up: Box<dyn Fn(&Sim)>,
}

impl ExposedSpace {
    fn touch(&self, sim: &Sim) {
        self.activity.set(sim.now());
        if self.runtime.disk(self.disk).power_state() == PowerStateKind::Standby {
            // Cold hit: the IO arrived at a spun-down disk. Flag the trace
            // (if one rides the ambient stamp) so the slo report can split
            // cold reads from warm ones.
            sim.reqtracer().note_cold_hit(sim.current_stamp());
            (self.on_spin_up)(sim);
        }
    }
}

fn map_err(e: FabricIoError) -> BlockError {
    match e {
        FabricIoError::NotAttached | FabricIoError::NotReady => {
            BlockError::Unavailable(e.to_string())
        }
        FabricIoError::Disk(d) => BlockError::Io(d.to_string()),
    }
}

impl BlockDevice for ExposedSpace {
    fn capacity(&self) -> u64 {
        self.len
    }

    fn read(&self, sim: &Sim, offset: u64, len: u64, cb: ReadCb) {
        if offset.saturating_add(len) > self.len {
            sim.schedule_now(move |sim| cb(sim, Err(BlockError::OutOfRange)));
            return;
        }
        self.touch(sim);
        self.runtime
            .read(sim, self.disk, self.offset + offset, len, move |sim, r| {
                cb(sim, r.map_err(map_err));
            });
    }

    fn write(&self, sim: &Sim, offset: u64, data: Vec<u8>, cb: WriteCb) {
        if offset.saturating_add(data.len() as u64) > self.len {
            sim.schedule_now(move |sim| cb(sim, Err(BlockError::OutOfRange)));
            return;
        }
        self.touch(sim);
        self.runtime
            .write(sim, self.disk, self.offset + offset, data, move |sim, r| {
                cb(sim, r.map(|_| ()).map_err(map_err));
            });
    }
}
