//! Metadata partition routing.
//!
//! The partitioned Master splits StorAlloc into per-unit-group namespaces,
//! each persisted in its own replicated log (an independent
//! `ustore_consensus::CoordGroup` replica set). [`MetaRouter`] is the thin,
//! purely-arithmetic map from a unit (and therefore a space name) to its
//! owning partition and that partition's znode namespace.
//!
//! Partition 0 is special: it lives in the **base** coordination cluster
//! under the legacy `/ustore/alloc` directory, and also carries everything
//! that must stay globally serialized (master election, client sessions).
//! A single-partition deployment therefore touches exactly the znodes the
//! pre-partition Master touched — byte-identical event streams.

use crate::ids::UnitId;

/// Maps units to metadata partitions and partitions to znode namespaces.
///
/// Partitioning follows the unit-group rule used by the sharded engine:
/// contiguous blocks of `ceil(units / partitions)` units per partition, so
/// a partition map with `partitions == groups` aligns one metadata
/// partition with each unit-group world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaRouter {
    partitions: u32,
    units_per_partition: u32,
}

impl MetaRouter {
    /// A router over `units` deploy units split into `partitions`
    /// partitions. Both are clamped to at least 1.
    pub fn new(partitions: u32, units: u32) -> MetaRouter {
        let partitions = partitions.max(1);
        MetaRouter {
            partitions,
            units_per_partition: units.max(1).div_ceil(partitions).max(1),
        }
    }

    /// Number of partitions (≥ 1).
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition owning `unit`'s metadata.
    pub fn partition_of_unit(&self, unit: UnitId) -> u32 {
        (unit.0 / self.units_per_partition).min(self.partitions - 1)
    }

    /// The allocation directory of partition `p`. Partition 0 keeps the
    /// legacy `/ustore/alloc` path.
    pub fn alloc_dir(&self, p: u32) -> String {
        if p == 0 {
            "/ustore/alloc".to_owned()
        } else {
            format!("/ustore/p{p}/alloc")
        }
    }

    /// The znode paths that must exist (created in order, parents first)
    /// before partition `p` serves allocations.
    pub fn create_chain(&self, p: u32) -> Vec<String> {
        if p == 0 {
            vec!["/ustore".to_owned(), "/ustore/alloc".to_owned()]
        } else {
            vec![
                "/ustore".to_owned(),
                format!("/ustore/p{p}"),
                format!("/ustore/p{p}/alloc"),
            ]
        }
    }

    /// The coordination-client socket address a master at `master_addr`
    /// uses for partition `p` (partition 0 reuses the legacy `-zk` socket).
    pub fn coord_socket(master_addr: &ustore_net::Addr, p: u32) -> ustore_net::Addr {
        if p == 0 {
            ustore_net::Addr::new(format!("{master_addr}-zk"))
        } else {
            ustore_net::Addr::new(format!("{master_addr}-zk-p{p}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partition_owns_everything_under_legacy_paths() {
        let r = MetaRouter::new(1, 8);
        assert_eq!(r.partitions(), 1);
        for u in 0..8 {
            assert_eq!(r.partition_of_unit(UnitId(u)), 0);
        }
        assert_eq!(r.alloc_dir(0), "/ustore/alloc");
        assert_eq!(r.create_chain(0), vec!["/ustore", "/ustore/alloc"]);
    }

    #[test]
    fn contiguous_blocks_and_clamping() {
        let r = MetaRouter::new(4, 8);
        assert_eq!(r.partition_of_unit(UnitId(0)), 0);
        assert_eq!(r.partition_of_unit(UnitId(1)), 0);
        assert_eq!(r.partition_of_unit(UnitId(2)), 1);
        assert_eq!(r.partition_of_unit(UnitId(7)), 3);
        // More partitions than units: trailing partitions own nothing,
        // high units clamp into the last partition.
        let r = MetaRouter::new(4, 2);
        assert_eq!(r.partition_of_unit(UnitId(0)), 0);
        assert_eq!(r.partition_of_unit(UnitId(1)), 1);
        assert_eq!(r.partition_of_unit(UnitId(9)), 3);
    }

    #[test]
    fn partition_namespaces_are_disjoint() {
        let r = MetaRouter::new(3, 6);
        assert_eq!(r.alloc_dir(1), "/ustore/p1/alloc");
        assert_eq!(r.alloc_dir(2), "/ustore/p2/alloc");
        assert_eq!(
            r.create_chain(2),
            vec!["/ustore", "/ustore/p2", "/ustore/p2/alloc"]
        );
    }

    #[test]
    fn coord_sockets() {
        let m = ustore_net::Addr::new("master-1");
        assert_eq!(MetaRouter::coord_socket(&m, 0).as_str(), "master-1-zk");
        assert_eq!(MetaRouter::coord_socket(&m, 3).as_str(), "master-1-zk-p3");
    }
}
