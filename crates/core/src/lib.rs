//! # ustore — the UStore cold/archival storage system
//!
//! Reproduction of the UStore system from *"UStore: A Low Cost Cold and
//! Archival Data Storage System for Data Centers"* (ICDCS 2015): a
//! combined hardware/software design that attaches large numbers of
//! commodity disks to existing data-center servers through a
//! reconfigurable USB 3.0 fat-tree fabric.
//!
//! This crate is the software stack of §IV, running over the simulated
//! substrates (`ustore-sim`, `ustore-usb`, `ustore-disk`, `ustore-net`,
//! `ustore-consensus`, `ustore-fabric`):
//!
//! - [`Master`]: replicated metadata service (SysConf / SysStat /
//!   StorAlloc), heartbeat failure detection, failover orchestration.
//! - [`Controller`]: fabric command execution (Algorithm 1 + actuation +
//!   verification + rollback).
//! - [`Endpoint`]: per-host agent — USB monitoring, heartbeats, iSCSI
//!   target export, idle spin-down power management.
//! - [`UStoreClient`] / [`Mounted`]: the ClientLib — allocation, lookup
//!   and auto-remounting block devices.
//! - [`UStoreSystem`]: a whole-deployment harness with failure injection.
//! - [`HealthWatchdog`]: telemetry-driven degradation detection that
//!   escalates drifting disks into the failover/reconfiguration path
//!   before they fail hard.
//!
//! ## Quickstart
//!
//! ```
//! use ustore::UStoreSystem;
//! use ustore_net::BlockDevice;
//!
//! let system = UStoreSystem::prototype(42);
//! system.settle();
//! let client = system.client("app-1");
//! let sim = system.sim.clone();
//! client.allocate(&sim, "backup", 1 << 30, move |sim, space| {
//!     let space = space.expect("allocated");
//!     println!("got {} on {:?}", space.name, space.host_addr);
//! });
//! system.sim.run_until(system.sim.now() + std::time::Duration::from_secs(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod clientlib;
pub mod controller;
pub mod endpoint;
pub mod ids;
pub mod master;
pub mod messages;
pub mod meta;
pub mod sharded;
pub mod system;
pub mod watchdog;

pub use alloc::{AllocError, Allocation, Allocator, Extent};
pub use clientlib::{ClientLibConfig, ClientLibError, Mounted, UStoreClient};
pub use controller::Controller;
pub use endpoint::{Endpoint, EndpointConfig};
pub use ids::{ParseSpaceNameError, SpaceName, UnitId};
pub use master::{Master, MasterConfig, UnitConf};
pub use messages::{MasterError, SpaceInfo};
pub use meta::MetaRouter;
pub use sharded::{
    partition_world, world_of_unit, PodWorld, ShardedPod, ShardedPodConfig, TelemetryPlan,
    TracePlan, WorldTelemetry,
};
pub use system::{
    coord_addr, host_addr, master_addr, unit_conf_for, unit_host_addr, SystemConfig, UStoreSystem,
};
pub use watchdog::{HealthEvent, HealthSignal, HealthWatchdog, Phase, WatchdogConfig};
