//! Master-side health watchdog: scraped time series → proactive recovery.
//!
//! Cold-storage fleets degrade *gradually* — Gray & van Ingen's disk
//! measurements show uncorrectable-read and seek-latency drift preceding
//! outright failure — so waiting for an EndPoint to report a dead disk
//! (§IV-E) leaves a window where a dying drive serves ever-slower,
//! ever-flakier IO. The [`HealthWatchdog`] closes that window: it
//! subscribes to a [`Scraper`]'s per-component series and applies
//! threshold + EWMA rules per scrape:
//!
//! - **per-disk seek-latency drift** — the windowed mean of
//!   `disk.latency_ns` (derived from the cumulative histogram's
//!   mean/count series) against an EWMA baseline learned while healthy;
//! - **per-disk uncorrectable reads** — any `disk.uncorrectable_reads`
//!   growth in a window;
//! - **per-link saturation** — `usb.link_{in,out}_busy_ns` duty cycle
//!   over the scrape interval;
//! - **re-enumeration storms** — `usb.enumerations` + `usb.detaches`
//!   growth per window (a flapping hub re-enumerates constantly).
//!
//! Every breach becomes a typed [`HealthEvent`] recorded in the span log
//! (`watchdog.event` instants with signal/value/threshold attributes).
//! Disk-level breaches sustained for [`WatchdogConfig::sustain`]
//! consecutive scrapes escalate into the existing reconfiguration path via
//! [`Master::recover_disk`], wrapped in a `degradation` span tree
//! (`degradation.detection` → `degradation.reconfiguration` →
//! `degradation.remount`) mirroring the hard-failover taxonomy, and a
//! per-disk `watchdog.phase` gauge makes the phases readable straight from
//! the exported time series.
//!
//! Fault-injection harnesses can register ground truth
//! ([`HealthWatchdog::mark_degraded`]) so escalation accuracy is exported
//! as explicit `watchdog.false_pos_total` / `watchdog.false_neg_total`
//! counters (`ustore_watchdog_false_{pos,neg}_total` in Prometheus form):
//! an escalation on a component never marked degraded is a false positive
//! at escalation time; a marked component never escalated is a false
//! negative, tallied by the end-of-run [`HealthWatchdog::audit`].

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use ustore_fabric::DiskId;
use ustore_sim::obs::timeseries::{Scraper, TimeSeries};
use ustore_sim::{Sim, SimTime, SpanId, TraceLevel};

use crate::ids::UnitId;
use crate::master::Master;

/// Watchdog tunables.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Windowed mean latency above `factor x` the EWMA baseline is a
    /// drift breach.
    pub latency_warn_factor: f64,
    /// Weight of each new healthy window in the EWMA baseline.
    pub ewma_alpha: f64,
    /// Consecutive breaching scrapes before escalating to recovery.
    pub sustain: u32,
    /// Healthy windows required before drift is judged at all.
    pub min_baseline_samples: u32,
    /// Per-direction link duty cycle above this is a saturation breach.
    pub link_util_warn: f64,
    /// (Re-)enumerations + detaches per window at or above this is a storm.
    pub enum_storm_warn: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            latency_warn_factor: 2.0,
            ewma_alpha: 0.3,
            sustain: 3,
            min_baseline_samples: 4,
            link_util_warn: 0.9,
            enum_storm_warn: 4,
        }
    }
}

/// What a [`HealthEvent`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// Windowed mean disk latency drifted past the baseline factor.
    SeekLatencyDrift,
    /// Uncorrectable reads appeared in the window.
    ReadErrors,
    /// A USB link direction is saturated.
    LinkSaturation,
    /// A link is re-enumerating in a storm.
    EnumStorm,
}

impl fmt::Display for HealthSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthSignal::SeekLatencyDrift => "seek_latency_drift",
            HealthSignal::ReadErrors => "read_errors",
            HealthSignal::LinkSaturation => "link_saturation",
            HealthSignal::EnumStorm => "enum_storm",
        })
    }
}

/// One detected health breach.
#[derive(Debug, Clone)]
pub struct HealthEvent {
    /// When the breaching scrape ran.
    pub at: SimTime,
    /// The affected component (disk or usb-host metric component).
    pub component: String,
    /// What rule fired.
    pub signal: HealthSignal,
    /// The observed value (ns, ratio or count, per the signal).
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// Recovery phase of one watched disk, published as the `watchdog.phase`
/// gauge so exported time series show the detection → reconfiguration →
/// remount timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No breach active.
    Healthy,
    /// Breaches observed, not yet sustained long enough to act.
    Detecting,
    /// `Master::recover_disk` is rerouting the disk.
    Reconfiguring,
    /// Fabric done; waiting for clients to remount the moved disk.
    Remounting,
    /// Recovery completed end to end.
    Recovered,
}

impl Phase {
    /// The gauge encoding (0 healthy … 4 recovered).
    pub fn as_gauge(self) -> f64 {
        match self {
            Phase::Healthy => 0.0,
            Phase::Detecting => 1.0,
            Phase::Reconfiguring => 2.0,
            Phase::Remounting => 3.0,
            Phase::Recovered => 4.0,
        }
    }
}

struct DiskWatch {
    component: String,
    unit: UnitId,
    disk: DiskId,
    baseline: Option<f64>,
    healthy_windows: u32,
    breaches: u32,
    phase: Phase,
    root: Option<SpanId>,
    detection: Option<SpanId>,
    remount: Option<SpanId>,
    // Ground truth + accuracy accounting (fault-injection harnesses mark
    // genuinely degraded components; escalations are judged against it).
    truth_degraded: bool,
    escalated: bool,
    fn_counted: bool,
}

struct W {
    config: WatchdogConfig,
    disks: Vec<DiskWatch>,
    links: Vec<String>,
    events: Vec<HealthEvent>,
    escalations: u64,
    false_pos: u64,
    false_neg: u64,
    counters_registered: bool,
}

/// The health watchdog; see the module docs.
#[derive(Clone)]
pub struct HealthWatchdog {
    inner: Rc<RefCell<W>>,
}

impl fmt::Debug for HealthWatchdog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.inner.borrow();
        f.debug_struct("HealthWatchdog")
            .field("disks", &w.disks.len())
            .field("links", &w.links.len())
            .field("events", &w.events.len())
            .finish()
    }
}

/// Windowed mean over the last scrape interval, reconstructed from the
/// cumulative histogram's `mean`/`count` series: the histogram is
/// lifetime-cumulative, so `sum = mean x count` deltas recover the mean of
/// just the samples recorded between the last two scrapes.
fn window_mean(mean: &TimeSeries, count: &TimeSeries) -> Option<f64> {
    let (_, count_now) = count.last()?;
    let count_delta = count.delta()?;
    if count_delta <= 0.0 {
        return None; // no new samples this window
    }
    let (_, mean_now) = mean.last()?;
    let mean_prev = mean_now - mean.delta()?;
    let count_prev = count_now - count_delta;
    let sum_delta = mean_now * count_now - mean_prev * count_prev;
    Some(sum_delta / count_delta)
}

impl HealthWatchdog {
    /// Subscribes a watchdog to `scraper`. `disks` maps each disk's metric
    /// component name to its identity for escalation; `links` lists the
    /// usb-host component names to check for saturation/storms.
    pub fn install(
        scraper: &Scraper,
        master: Master,
        disks: Vec<(String, UnitId, DiskId)>,
        links: Vec<String>,
        config: WatchdogConfig,
    ) -> HealthWatchdog {
        let inner = Rc::new(RefCell::new(W {
            config,
            disks: disks
                .into_iter()
                .map(|(component, unit, disk)| DiskWatch {
                    component,
                    unit,
                    disk,
                    baseline: None,
                    healthy_windows: 0,
                    breaches: 0,
                    phase: Phase::Healthy,
                    root: None,
                    detection: None,
                    remount: None,
                    truth_degraded: false,
                    escalated: false,
                    fn_counted: false,
                })
                .collect(),
            links,
            events: Vec::new(),
            escalations: 0,
            false_pos: 0,
            false_neg: 0,
            counters_registered: false,
        }));
        let dog = HealthWatchdog { inner };
        let d2 = dog.clone();
        scraper.on_scrape(move |sim, sc| d2.check(sim, sc, &master));
        dog
    }

    /// All breaches seen so far, in detection order.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.inner.borrow().events.clone()
    }

    /// How many times sustained degradation escalated into recovery.
    pub fn escalations(&self) -> u64 {
        self.inner.borrow().escalations
    }

    /// Registers ground truth: `component` really is degrading (a fault
    /// injector dialled up its drift / error rate). Escalations on marked
    /// components are true positives; escalations on unmarked ones count
    /// into `watchdog.false_pos_total`.
    pub fn mark_degraded(&self, component: &str) {
        let mut w = self.inner.borrow_mut();
        if let Some(d) = w.disks.iter_mut().find(|d| d.component == component) {
            d.truth_degraded = true;
        }
    }

    /// End-of-run accuracy audit: every marked-degraded disk the watchdog
    /// never escalated counts once into `watchdog.false_neg_total`.
    /// Idempotent; returns the cumulative `(false_pos, false_neg)` totals.
    pub fn audit(&self, sim: &Sim) -> (u64, u64) {
        self.ensure_counters(sim);
        let mut misses = 0u64;
        {
            let mut w = self.inner.borrow_mut();
            for d in &mut w.disks {
                if d.truth_degraded && !d.escalated && !d.fn_counted {
                    d.fn_counted = true;
                    misses += 1;
                }
            }
            w.false_neg += misses;
        }
        if misses > 0 {
            sim.count("watchdog", "watchdog.false_neg_total", misses);
        }
        self.false_counts()
    }

    /// Cumulative `(false_pos, false_neg)` counts (false negatives only
    /// populate after [`HealthWatchdog::audit`]).
    pub fn false_counts(&self) -> (u64, u64) {
        let w = self.inner.borrow();
        (w.false_pos, w.false_neg)
    }

    /// Registers the accuracy counters at zero so the exported series
    /// (`ustore_watchdog_false_{pos,neg}_total`) exist even on clean runs.
    fn ensure_counters(&self, sim: &Sim) {
        {
            let mut w = self.inner.borrow_mut();
            if w.counters_registered {
                return;
            }
            w.counters_registered = true;
        }
        sim.count("watchdog", "watchdog.false_pos_total", 0);
        sim.count("watchdog", "watchdog.false_neg_total", 0);
    }

    /// The recovery phase of a watched disk component.
    pub fn phase(&self, component: &str) -> Option<Phase> {
        self.inner
            .borrow()
            .disks
            .iter()
            .find(|d| d.component == component)
            .map(|d| d.phase)
    }

    /// Records a breach: into the event list, the metrics registry and the
    /// span log (a zero-duration `watchdog.event` instant).
    fn emit(&self, sim: &Sim, component: &str, signal: HealthSignal, value: f64, threshold: f64) {
        sim.count("watchdog", "watchdog.events", 1);
        let span = sim.span_start("watchdog", "watchdog.event");
        sim.span_attr(span, "component", component);
        sim.span_attr(span, "signal", signal.to_string());
        sim.span_attr(span, "value", format!("{value:.1}"));
        sim.span_attr(span, "threshold", format!("{threshold:.1}"));
        sim.span_end(span);
        self.inner.borrow_mut().events.push(HealthEvent {
            at: sim.now(),
            component: component.to_owned(),
            signal,
            value,
            threshold,
        });
    }

    /// One sweep: runs every rule against the scraper's current series.
    fn check(&self, sim: &Sim, sc: &Scraper, master: &Master) {
        self.ensure_counters(sim);
        self.check_links(sim, sc);
        self.check_disks(sim, sc, master);
    }

    fn check_links(&self, sim: &Sim, sc: &Scraper) {
        let (links, util_warn, storm_warn) = {
            let w = self.inner.borrow();
            (
                w.links.clone(),
                w.config.link_util_warn,
                w.config.enum_storm_warn,
            )
        };
        let interval_ns = sc.interval().as_nanos() as f64;
        for link in &links {
            for dir in ["usb.link_in_busy_ns", "usb.link_out_busy_ns"] {
                let Some(busy) = sc.with_series(link, dir, |t| t.delta()).flatten() else {
                    continue;
                };
                let util = busy / interval_ns;
                if util > util_warn {
                    self.emit(sim, link, HealthSignal::LinkSaturation, util, util_warn);
                }
            }
            // A series with a single retained sample was born between the
            // last two scrapes, so its whole value accrued inside the
            // window — a mass detach lands entire on a fresh counter. The
            // scrapes() guard keeps the scraper's very first sweep (where
            // every series is single-sample but carries history from
            // before telemetry started) from reading as a storm.
            let windowed = |t: &TimeSeries| {
                t.delta().or_else(|| {
                    (sc.scrapes() >= 2)
                        .then(|| t.last().map(|(_, v)| v))
                        .flatten()
                })
            };
            let enums = sc
                .with_series(link, "usb.enumerations", windowed)
                .flatten()
                .unwrap_or(0.0);
            let detaches = sc
                .with_series(link, "usb.detaches", windowed)
                .flatten()
                .unwrap_or(0.0);
            let storm = enums + detaches;
            if storm >= storm_warn as f64 {
                self.emit(sim, link, HealthSignal::EnumStorm, storm, storm_warn as f64);
            }
        }
    }

    fn check_disks(&self, sim: &Sim, sc: &Scraper, master: &Master) {
        let n = self.inner.borrow().disks.len();
        for idx in 0..n {
            // Per-disk state is re-borrowed around each emit/escalate so
            // callbacks may re-enter the watchdog.
            let (component, phase) = {
                let w = self.inner.borrow();
                (w.disks[idx].component.clone(), w.disks[idx].phase)
            };
            match phase {
                Phase::Healthy | Phase::Detecting => {
                    self.judge_disk(sim, sc, master, idx, &component)
                }
                Phase::Reconfiguring => {} // waiting on the controller
                Phase::Remounting => {
                    // The remount span is closed by the client's first
                    // successful IO on the moved disk (the scenario joins
                    // it via find_open_by); once closed, recovery is done.
                    let closed = {
                        let w = self.inner.borrow();
                        w.disks[idx]
                            .remount
                            .map(|id| sim.with_spans(|t| t.get(id).is_some_and(|s| !s.is_open())))
                            .unwrap_or(true)
                    };
                    if closed {
                        let root = {
                            let mut w = self.inner.borrow_mut();
                            w.disks[idx].phase = Phase::Recovered;
                            w.disks[idx].root.take()
                        };
                        if let Some(root) = root {
                            sim.span_end(root);
                        }
                        sim.trace(
                            TraceLevel::Info,
                            "watchdog",
                            format!("{component}: degradation recovery complete"),
                        );
                    }
                }
                Phase::Recovered => {}
            }
            let phase = self.inner.borrow().disks[idx].phase;
            sim.gauge_set(&component, "watchdog.phase", phase.as_gauge());
        }
    }

    /// Drift/error rules for one disk in Healthy/Detecting phase.
    fn judge_disk(&self, sim: &Sim, sc: &Scraper, master: &Master, idx: usize, component: &str) {
        let config = self.inner.borrow().config.clone();
        // Nested `with_series` is fine: both take shared borrows.
        let window = sc
            .with_series(component, "disk.latency_ns.mean", |m| {
                sc.with_series(component, "disk.latency_ns.count", |c| window_mean(m, c))
            })
            .flatten()
            .flatten();
        let uncorrectable = sc
            .with_series(component, "disk.uncorrectable_reads", |t| t.delta())
            .flatten()
            .unwrap_or(0.0);

        let mut breach = false;
        if uncorrectable > 0.0 {
            self.emit(sim, component, HealthSignal::ReadErrors, uncorrectable, 0.0);
            breach = true;
        }
        if let Some(wm) = window {
            let (baseline, established) = {
                let w = self.inner.borrow();
                let d = &w.disks[idx];
                (d.baseline, d.healthy_windows >= config.min_baseline_samples)
            };
            match baseline {
                Some(base) if established && wm > config.latency_warn_factor * base => {
                    self.emit(
                        sim,
                        component,
                        HealthSignal::SeekLatencyDrift,
                        wm,
                        config.latency_warn_factor * base,
                    );
                    breach = true;
                }
                _ => {
                    // Healthy (or still learning): fold into the baseline.
                    let mut w = self.inner.borrow_mut();
                    let d = &mut w.disks[idx];
                    d.baseline = Some(match d.baseline {
                        Some(b) => config.ewma_alpha * wm + (1.0 - config.ewma_alpha) * b,
                        None => wm,
                    });
                    d.healthy_windows += 1;
                }
            }
        }

        if breach {
            let escalate = {
                let mut w = self.inner.borrow_mut();
                let d = &mut w.disks[idx];
                d.breaches += 1;
                if d.phase == Phase::Healthy {
                    d.phase = Phase::Detecting;
                    let root = sim.span_start("watchdog", "degradation");
                    sim.span_attr(root, "disk", component);
                    let det = sim.span_child(root, "watchdog", "degradation.detection");
                    d.root = Some(root);
                    d.detection = Some(det);
                }
                d.breaches >= config.sustain
            };
            if escalate {
                self.escalate(sim, master, idx, component);
            }
        } else {
            // Streak broken before escalation: stand down.
            let spans = {
                let mut w = self.inner.borrow_mut();
                let d = &mut w.disks[idx];
                if d.phase != Phase::Detecting {
                    return;
                }
                d.phase = Phase::Healthy;
                d.breaches = 0;
                (d.detection.take(), d.root.take())
            };
            let (det, root) = spans;
            if let Some(det) = det {
                sim.span_end(det);
            }
            // The detection child may already be closed (a failed
            // escalation takes it); the root must close either way.
            if let Some(root) = root {
                sim.span_attr(root, "outcome", "transient");
                sim.span_end(root);
            }
        }
    }

    /// Sustained degradation: hand the disk to the Master's
    /// reconfiguration path and track the recovery phases.
    fn escalate(&self, sim: &Sim, master: &Master, idx: usize, component: &str) {
        let (unit, disk, detection, root, false_pos) = {
            let mut w = self.inner.borrow_mut();
            w.escalations += 1;
            let first = !w.disks[idx].escalated;
            let false_pos = first && !w.disks[idx].truth_degraded;
            if false_pos {
                w.false_pos += 1;
            }
            let d = &mut w.disks[idx];
            d.escalated = true;
            d.phase = Phase::Reconfiguring;
            (d.unit, d.disk, d.detection.take(), d.root, false_pos)
        };
        sim.count("watchdog", "watchdog.escalations", 1);
        if false_pos {
            sim.count("watchdog", "watchdog.false_pos_total", 1);
        }
        sim.reqtracer()
            .annotate(&format!("watchdog escalate {component}"), sim.now());
        sim.trace(
            TraceLevel::Warn,
            "watchdog",
            format!("{component}: sustained degradation; rerouting {unit} {disk}"),
        );
        if let Some(det) = detection {
            sim.span_end(det);
        }
        let reconf = root.map(|r| sim.span_child(r, "watchdog", "degradation.reconfiguration"));
        let this = self.clone();
        let component = component.to_owned();
        master.recover_disk(sim, unit, disk, move |sim, ok| {
            if let Some(rc) = reconf {
                sim.span_attr(rc, "ok", if ok { "true" } else { "false" });
                sim.span_end(rc);
            }
            let mut w = this.inner.borrow_mut();
            let d = &mut w.disks[idx];
            if ok {
                d.phase = Phase::Remounting;
                if let Some(root) = d.root {
                    let rm = sim.span_child(root, "watchdog", "degradation.remount");
                    sim.span_attr(rm, "disk", component.clone());
                    d.remount = Some(rm);
                }
            } else {
                // Recovery failed (no path, controller down): back to
                // detecting so the next sustained breach retries.
                d.phase = Phase::Detecting;
                d.breaches = 0;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new(64);
        for (i, v) in vals.iter().enumerate() {
            ts.push(SimTime::from_secs(i as u64), *v);
        }
        ts
    }

    #[test]
    fn window_mean_recovers_per_window_average() {
        // 10 samples averaging 100, then 5 more averaging 400:
        // cumulative mean moves 100 -> 200, window mean must say 400.
        let count = series(&[10.0, 15.0]);
        let mean = series(&[100.0, 200.0]);
        let wm = window_mean(&mean, &count).expect("window");
        assert!((wm - 400.0).abs() < 1e-9, "got {wm}");
    }

    #[test]
    fn window_mean_requires_new_samples() {
        let count = series(&[10.0, 10.0]);
        let mean = series(&[100.0, 100.0]);
        assert_eq!(window_mean(&mean, &count), None);
        assert_eq!(window_mean(&series(&[5.0]), &series(&[1.0])), None);
    }

    #[test]
    fn phase_gauge_encoding_is_ordered() {
        let phases = [
            Phase::Healthy,
            Phase::Detecting,
            Phase::Reconfiguring,
            Phase::Remounting,
            Phase::Recovered,
        ];
        for pair in phases.windows(2) {
            assert!(pair[0].as_gauge() < pair[1].as_gauge());
        }
    }
}
