//! The paper's §VII-B experiment as a runnable scenario: a replicated DFS
//! (the Hadoop stand-in) over UStore storage, with a host killed in the
//! middle of a large write.
//!
//! Expected outcome, mirroring the paper: the writer "encounters error
//! only for several seconds, then it resumes"; reads are not interrupted
//! because of the three replicas.
//!
//! ```text
//! cargo run --example dfs_failover
//! ```

use ustore_bench::hdfs::run_dfs_experiment;

fn main() {
    println!("running the DFS-over-UStore failover scenario (virtual minutes)...");
    let outcome = run_dfs_experiment(2015);
    println!();
    println!(
        "write completed despite the switch : {}",
        outcome.write_completed
    );
    println!(
        "client-visible error window         : {:.1} s  (paper: \"several seconds\")",
        outcome.error_window.as_secs_f64()
    );
    println!(
        "block-level write errors (retried)  : {}",
        outcome.write_errors
    );
    println!("read returned byte-exact data       : {}", outcome.read_ok);
    println!(
        "reader replica failovers             : {} (reads uninterrupted)",
        outcome.read_failovers
    );
    assert!(outcome.write_completed && outcome.read_ok);
}
