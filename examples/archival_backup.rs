//! An archival backup service over UStore (§I's motivating workload:
//! "file system backups and system logs ... accessed in large batches on
//! a predictable schedule").
//!
//! Nightly snapshots stream to a mounted UStore space; between backup
//! windows the service spins its disk down through the ClientLib's power
//! API (§IV-F), and the example reports how much unit power that saves.
//! A restore at the end verifies integrity end-to-end.
//!
//! ```text
//! cargo run --example archival_backup
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, UStoreSystem};
use ustore_disk::PowerStateKind;
use ustore_workload::BackupService;

fn run_for(s: &UStoreSystem, secs: u64) {
    s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
}

fn main() {
    let system = UStoreSystem::prototype(7);
    system.settle();
    let client = system.client("backup-svc");
    let sim = system.sim.clone();

    // One 4 GiB archive space.
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&sim, "backup", 4 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocate"));
    });
    run_for(&system, 5);
    let info = info.borrow().clone().expect("allocated");
    let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    run_for(&system, 10);
    let mounted = mounted.borrow().clone().expect("mounted");
    let service = BackupService::new(Rc::new(mounted));
    println!("archive space {} on {:?}", info.name, info.host_addr);

    // Three nightly snapshots; spin the disk down between windows.
    for night in 0..3u32 {
        let snapshot: Vec<u8> = (0..(64usize << 20))
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(night as u8))
            .collect();
        let label = format!("nightly-{night}");
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        let t0 = sim.now();
        service.backup(&sim, label.clone(), snapshot, move |sim, r| {
            let meta = r.expect("backup");
            println!(
                "  {} stored: {} MB in {:.1}s",
                meta.label,
                meta.len >> 20,
                sim.now().saturating_duration_since(t0).as_secs_f64()
            );
            d.set(true);
        });
        while !done.get() {
            run_for(&system, 1);
        }
        // Window over: the service spins its disk down itself.
        let before = system.runtime.unit_power_w();
        client.disk_power(&sim, info.name.disk, false, |_, r| r.expect("spin down"));
        run_for(&system, 10);
        let after = system.runtime.unit_power_w();
        println!(
            "  disk {:?} between windows; unit power {before:.1} W -> {after:.1} W",
            system.runtime.disk(info.name.disk).power_state()
        );
        assert_eq!(
            system.runtime.disk(info.name.disk).power_state(),
            PowerStateKind::Standby
        );
        // Sleep until the next window (the next IO auto-spins-up).
        run_for(&system, 3600);
    }

    // Restore and verify the latest snapshot.
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    service.restore(&sim, "nightly-2", move |_, r| {
        let data = r.expect("restore (checksummed)");
        println!(
            "restored nightly-2: {} MB, checksum verified",
            data.len() >> 20
        );
        o.set(true);
    });
    run_for(&system, 60);
    assert!(ok.get());
    println!(
        "catalog: {:?}",
        service
            .catalog()
            .iter()
            .map(|m| m.label.clone())
            .collect::<Vec<_>>()
    );
}
