//! Quickstart: bring up a UStore deployment, allocate cold storage, mount
//! it and do IO — the "external USB hard disks designed for data centers"
//! experience from the paper's abstract.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use ustore::{SpaceInfo, UStoreSystem};
use ustore_net::BlockDevice;

fn main() {
    // A deploy unit like the paper's prototype: 16 disks, 4 hosts, a
    // 5-node coordination cluster and 2 master processes.
    let system = UStoreSystem::prototype(42);
    println!("bringing the deploy unit up (enumeration, election, heartbeats)...");
    system.settle();
    println!(
        "  active master: {}",
        system
            .active_master()
            .map_or("none".into(), |m| m.addr().to_string())
    );
    println!("  disks online: {}", system.ready_disks().len());
    println!("  unit power: {:.1} W", system.runtime.unit_power_w());

    // Allocate 1 GiB for a backup service; the Master picks a disk using
    // the paper's affinity + locality rules and persists the allocation.
    let client = system.client("app-1");
    let sim = system.sim.clone();
    let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
    let i2 = info.clone();
    client.allocate(&sim, "backup", 1 << 30, move |_, r| {
        *i2.borrow_mut() = Some(r.expect("allocation"));
    });
    system
        .sim
        .run_until(system.sim.now() + Duration::from_secs(5));
    let info = info.borrow().clone().expect("allocated");
    println!(
        "allocated {} ({} bytes) served by {}",
        info.name,
        info.size,
        info.host_addr.as_ref().expect("host known")
    );

    // Mount it and store something. The handle is a block device that
    // keeps working across host failures (auto-remount).
    let mounted: Rc<RefCell<Option<ustore::Mounted>>> = Rc::new(RefCell::new(None));
    let m2 = mounted.clone();
    client.mount(&sim, info.name, move |_, r| {
        *m2.borrow_mut() = Some(r.expect("mount"));
    });
    system
        .sim
        .run_until(system.sim.now() + Duration::from_secs(10));
    let mounted = mounted.borrow().clone().expect("mounted");
    println!("mounted {} ({} bytes)", mounted.name(), mounted.capacity());

    let m3 = mounted.clone();
    mounted.write(
        &sim,
        0,
        b"cold and archival bits".to_vec(),
        Box::new(move |sim, r| {
            r.expect("write");
            m3.read(
                sim,
                0,
                22,
                Box::new(|sim, r| {
                    let data = r.expect("read");
                    println!(
                        "read back {:?} at t={}",
                        String::from_utf8_lossy(&data),
                        sim.now()
                    );
                }),
            );
        }),
    );
    system
        .sim
        .run_until(system.sim.now() + Duration::from_secs(5));
    println!(
        "done: virtual time {}, {} events",
        system.sim.now(),
        system.sim.events_processed()
    );
}
