//! A cold-data tier serving a day of user traffic (§I's interactive cold
//! data: "accessed rarely, but ... a user would expect the response after
//! a short amount of time, usually in the range of seconds").
//!
//! Objects live on mounted UStore spaces; accesses follow a synthetic
//! Zipf/diurnal trace. The EndPoints' idle spin-down (§IV-F) powers disks
//! down through the night; requests that land on a sleeping disk pay a
//! spin-up — and the example reports the latency split and the energy
//! saved versus keeping everything spinning.
//!
//! ```text
//! cargo run --example cold_tier
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, SystemConfig, UStoreSystem};
use ustore_net::BlockDevice;
use ustore_sim::Sim;
use ustore_workload::{generate, TraceConfig};

fn main() {
    // Aggressive spin-down so the diurnal trough actually powers down.
    let mut cfg = SystemConfig::default();
    cfg.endpoint.idle_spin_down = Duration::from_secs(240);
    cfg.endpoint.idle_check = Duration::from_secs(60);
    let system = UStoreSystem::build(Sim::new(99), cfg);
    system.settle();
    let sim = system.sim.clone();
    let client = system.client("cold-tier");

    // Four 1 GiB spaces as object shards.
    let mut shards: Vec<Mounted> = Vec::new();
    for i in 0..4 {
        let info: Rc<RefCell<Option<SpaceInfo>>> = Rc::new(RefCell::new(None));
        let i2 = info.clone();
        client.allocate(&sim, format!("shard-{i}"), 1 << 30, move |_, r| {
            *i2.borrow_mut() = Some(r.expect("allocate"));
        });
        system
            .sim
            .run_until(system.sim.now() + Duration::from_secs(5));
        let info = info.borrow().clone().expect("allocated");
        let mounted: Rc<RefCell<Option<Mounted>>> = Rc::new(RefCell::new(None));
        let m2 = mounted.clone();
        client.mount(&sim, info.name, move |_, r| {
            *m2.borrow_mut() = Some(r.expect("mount"));
        });
        system
            .sim
            .run_until(system.sim.now() + Duration::from_secs(10));
        let m = mounted.borrow().clone().expect("mounted");
        shards.push(m);
    }

    // A compressed day: 2 virtual hours of trace at high intensity.
    let trace = generate(
        &TraceConfig {
            objects: 4096,
            peak_per_hour: 1200.0,
            ..TraceConfig::default()
        },
        Duration::from_secs(2 * 3600),
        &mut sim.fork_rng("trace"),
    );
    println!("replaying {} accesses over 2 virtual hours...", trace.len());

    let fast = Rc::new(RefCell::new(0u64)); // served from spinning disk
    let slow = Rc::new(RefCell::new(0u64)); // paid a spin-up
    let start_energy: f64 = system
        .runtime
        .disk_ids()
        .iter()
        .map(|d| system.runtime.disk(*d).energy_joules(&sim))
        .sum();
    let base = sim.now();
    // Objects are range-partitioned across shards, so Zipf popularity
    // concentrates traffic on shard 0 and leaves the tail shards cold —
    // which is what lets the EndPoint spin their disks down.
    let n_objects = 4096usize;
    for op in trace {
        let shard_idx = (op.object * shards.len() / n_objects).min(shards.len() - 1);
        let shard = shards[shard_idx].clone();
        let offset = ((op.object % (n_objects / shards.len())) as u64) * 65536;
        let read = op.read;
        let at = op.at;
        let fast2 = fast.clone();
        let slow2 = slow.clone();
        sim.schedule_at(
            base + at.duration_since(ustore_sim::SimTime::ZERO),
            move |sim| {
                let issued = sim.now();
                let f = fast2.clone();
                let s = slow2.clone();
                if op_read(read) {
                    shard.read(
                        sim,
                        offset,
                        65536,
                        Box::new(move |sim, r| {
                            r.expect("read");
                            classify(sim.now().saturating_duration_since(issued), &f, &s);
                        }),
                    );
                } else {
                    shard.write(
                        sim,
                        offset,
                        vec![1u8; 65536],
                        Box::new(move |sim, r| {
                            r.expect("write");
                            classify(sim.now().saturating_duration_since(issued), &f, &s);
                        }),
                    );
                }
            },
        );
    }
    system
        .sim
        .run_until(base + Duration::from_secs(2 * 3600 + 120));

    let end_energy: f64 = system
        .runtime
        .disk_ids()
        .iter()
        .map(|d| system.runtime.disk(*d).energy_joules(&sim))
        .sum();
    let consumed_wh = (end_energy - start_energy) / 3600.0;
    let always_on_wh = 16.0 * 5.76 * 2.0; // 16 disks idling for 2 h
    println!("fast responses (disk spinning): {}", fast.borrow());
    println!("slow responses (paid spin-up) : {}", slow.borrow());
    println!(
        "disk energy: {consumed_wh:.1} Wh vs {always_on_wh:.1} Wh always-on ({:.0}% saved)",
        100.0 * (1.0 - consumed_wh / always_on_wh)
    );
}

fn op_read(read: bool) -> bool {
    read
}

fn classify(latency: Duration, fast: &Rc<RefCell<u64>>, slow: &Rc<RefCell<u64>>) {
    // Spin-up takes ~7 s; anything beyond a second means the disk slept —
    // exactly the paper's "response ... in the range of seconds" budget.
    if latency > Duration::from_secs(1) {
        *slow.borrow_mut() += 1;
    } else {
        *fast.borrow_mut() += 1;
    }
}
