/root/repo/target/release/deps/ustore_usb-e58f67c518203218.d: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

/root/repo/target/release/deps/libustore_usb-e58f67c518203218.rlib: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

/root/repo/target/release/deps/libustore_usb-e58f67c518203218.rmeta: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

crates/usb/src/lib.rs:
crates/usb/src/host.rs:
crates/usb/src/profile.rs:
