/root/repo/target/release/deps/ustore_cost-d1074f3cd14b083a.d: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

/root/repo/target/release/deps/libustore_cost-d1074f3cd14b083a.rlib: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

/root/repo/target/release/deps/libustore_cost-d1074f3cd14b083a.rmeta: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

crates/cost/src/lib.rs:
crates/cost/src/capex.rs:
crates/cost/src/catalog.rs:
crates/cost/src/opex.rs:
