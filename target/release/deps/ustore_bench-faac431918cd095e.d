/root/repo/target/release/deps/ustore_bench-faac431918cd095e.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libustore_bench-faac431918cd095e.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

/root/repo/target/release/deps/libustore_bench-faac431918cd095e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/failover.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/hdfs.rs:
crates/bench/src/power.rs:
crates/bench/src/report.rs:
crates/bench/src/table2.rs:
