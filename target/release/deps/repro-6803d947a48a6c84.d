/root/repo/target/release/deps/repro-6803d947a48a6c84.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-6803d947a48a6c84: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
