/root/repo/target/release/deps/ustore-b4bc98010765f12a.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs

/root/repo/target/release/deps/libustore-b4bc98010765f12a.rlib: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs

/root/repo/target/release/deps/libustore-b4bc98010765f12a.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/clientlib.rs:
crates/core/src/controller.rs:
crates/core/src/endpoint.rs:
crates/core/src/ids.rs:
crates/core/src/master.rs:
crates/core/src/messages.rs:
crates/core/src/system.rs:
