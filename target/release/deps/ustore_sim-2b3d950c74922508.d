/root/repo/target/release/deps/ustore_sim-2b3d950c74922508.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libustore_sim-2b3d950c74922508.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libustore_sim-2b3d950c74922508.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/obs.rs:
crates/sim/src/rng.rs:
crates/sim/src/span.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
