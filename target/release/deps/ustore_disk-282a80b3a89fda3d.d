/root/repo/target/release/deps/ustore_disk-282a80b3a89fda3d.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

/root/repo/target/release/deps/libustore_disk-282a80b3a89fda3d.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

/root/repo/target/release/deps/libustore_disk-282a80b3a89fda3d.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/power.rs:
crates/disk/src/profile.rs:
