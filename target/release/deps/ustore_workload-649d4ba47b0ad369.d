/root/repo/target/release/deps/ustore_workload-649d4ba47b0ad369.d: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

/root/repo/target/release/deps/libustore_workload-649d4ba47b0ad369.rlib: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

/root/repo/target/release/deps/libustore_workload-649d4ba47b0ad369.rmeta: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

crates/workload/src/lib.rs:
crates/workload/src/backup.rs:
crates/workload/src/dfs.rs:
crates/workload/src/iometer.rs:
crates/workload/src/traces.rs:
