/root/repo/target/release/deps/ustore_net-b6df575505cf914a.d: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

/root/repo/target/release/deps/libustore_net-b6df575505cf914a.rlib: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

/root/repo/target/release/deps/libustore_net-b6df575505cf914a.rmeta: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

crates/net/src/lib.rs:
crates/net/src/blockdev.rs:
crates/net/src/iscsi.rs:
crates/net/src/network.rs:
crates/net/src/rpc.rs:
