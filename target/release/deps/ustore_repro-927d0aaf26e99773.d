/root/repo/target/release/deps/ustore_repro-927d0aaf26e99773.d: src/lib.rs

/root/repo/target/release/deps/libustore_repro-927d0aaf26e99773.rlib: src/lib.rs

/root/repo/target/release/deps/libustore_repro-927d0aaf26e99773.rmeta: src/lib.rs

src/lib.rs:
