/root/repo/target/release/deps/ustore_consensus-6bd4d83f30a4a490.d: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

/root/repo/target/release/deps/libustore_consensus-6bd4d83f30a4a490.rlib: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

/root/repo/target/release/deps/libustore_consensus-6bd4d83f30a4a490.rmeta: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

crates/consensus/src/lib.rs:
crates/consensus/src/client.rs:
crates/consensus/src/paxos.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/store.rs:
