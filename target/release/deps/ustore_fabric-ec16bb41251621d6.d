/root/repo/target/release/deps/ustore_fabric-ec16bb41251621d6.d: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

/root/repo/target/release/deps/libustore_fabric-ec16bb41251621d6.rlib: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

/root/repo/target/release/deps/libustore_fabric-ec16bb41251621d6.rmeta: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/control.rs:
crates/fabric/src/routing.rs:
crates/fabric/src/runtime.rs:
crates/fabric/src/topology.rs:
