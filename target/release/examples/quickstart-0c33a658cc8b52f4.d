/root/repo/target/release/examples/quickstart-0c33a658cc8b52f4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0c33a658cc8b52f4: examples/quickstart.rs

examples/quickstart.rs:
