/root/repo/target/debug/deps/ustore_net-54cdad15b6983b76.d: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs Cargo.toml

/root/repo/target/debug/deps/libustore_net-54cdad15b6983b76.rmeta: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/blockdev.rs:
crates/net/src/iscsi.rs:
crates/net/src/network.rs:
crates/net/src/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
