/root/repo/target/debug/deps/ustore_bench-a4724342d8548207.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libustore_bench-a4724342d8548207.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

/root/repo/target/debug/deps/libustore_bench-a4724342d8548207.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/failover.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/hdfs.rs:
crates/bench/src/power.rs:
crates/bench/src/report.rs:
crates/bench/src/table2.rs:
