/root/repo/target/debug/deps/ustore_workload-166eb093d872edb5.d: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

/root/repo/target/debug/deps/ustore_workload-166eb093d872edb5: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

crates/workload/src/lib.rs:
crates/workload/src/backup.rs:
crates/workload/src/dfs.rs:
crates/workload/src/iometer.rs:
crates/workload/src/traces.rs:
