/root/repo/target/debug/deps/ustore_disk-1509e8fd08864d0e.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

/root/repo/target/debug/deps/ustore_disk-1509e8fd08864d0e: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/power.rs:
crates/disk/src/profile.rs:
