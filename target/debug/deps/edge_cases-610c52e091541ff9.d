/root/repo/target/debug/deps/edge_cases-610c52e091541ff9.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-610c52e091541ff9.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
