/root/repo/target/debug/deps/ustore_repro-4600e9e577a36214.d: src/lib.rs

/root/repo/target/debug/deps/ustore_repro-4600e9e577a36214: src/lib.rs

src/lib.rs:
