/root/repo/target/debug/deps/ustore_cost-2dc18090d99716e2.d: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

/root/repo/target/debug/deps/ustore_cost-2dc18090d99716e2: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

crates/cost/src/lib.rs:
crates/cost/src/capex.rs:
crates/cost/src/catalog.rs:
crates/cost/src/opex.rs:
