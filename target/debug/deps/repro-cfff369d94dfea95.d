/root/repo/target/debug/deps/repro-cfff369d94dfea95.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-cfff369d94dfea95: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
