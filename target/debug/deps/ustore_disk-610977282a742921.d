/root/repo/target/debug/deps/ustore_disk-610977282a742921.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

/root/repo/target/debug/deps/libustore_disk-610977282a742921.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

/root/repo/target/debug/deps/libustore_disk-610977282a742921.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/power.rs:
crates/disk/src/profile.rs:
