/root/repo/target/debug/deps/edge_cases-6388a5d5e803e9eb.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-6388a5d5e803e9eb: tests/edge_cases.rs

tests/edge_cases.rs:
