/root/repo/target/debug/deps/properties-c762e13999cd176f.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c762e13999cd176f.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
