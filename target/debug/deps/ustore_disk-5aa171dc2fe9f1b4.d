/root/repo/target/debug/deps/ustore_disk-5aa171dc2fe9f1b4.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libustore_disk-5aa171dc2fe9f1b4.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/model.rs crates/disk/src/power.rs crates/disk/src/profile.rs Cargo.toml

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/model.rs:
crates/disk/src/power.rs:
crates/disk/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
