/root/repo/target/debug/deps/ustore_sim-0478f4fd78ff2a5f.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libustore_sim-0478f4fd78ff2a5f.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/obs.rs:
crates/sim/src/rng.rs:
crates/sim/src/span.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
