/root/repo/target/debug/deps/ustore_repro-f4c890eefee1a05b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libustore_repro-f4c890eefee1a05b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
