/root/repo/target/debug/deps/ustore_cost-d0b5117e5b79aaa7.d: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs Cargo.toml

/root/repo/target/debug/deps/libustore_cost-d0b5117e5b79aaa7.rmeta: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs Cargo.toml

crates/cost/src/lib.rs:
crates/cost/src/capex.rs:
crates/cost/src/catalog.rs:
crates/cost/src/opex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
