/root/repo/target/debug/deps/fault_injection-f3cb53b24f30f8b0.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-f3cb53b24f30f8b0.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
