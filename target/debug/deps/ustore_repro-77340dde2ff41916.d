/root/repo/target/debug/deps/ustore_repro-77340dde2ff41916.d: src/lib.rs

/root/repo/target/debug/deps/libustore_repro-77340dde2ff41916.rlib: src/lib.rs

/root/repo/target/debug/deps/libustore_repro-77340dde2ff41916.rmeta: src/lib.rs

src/lib.rs:
