/root/repo/target/debug/deps/ustore_workload-e4b9a60bf7cf792f.d: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs Cargo.toml

/root/repo/target/debug/deps/libustore_workload-e4b9a60bf7cf792f.rmeta: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/backup.rs:
crates/workload/src/dfs.rs:
crates/workload/src/iometer.rs:
crates/workload/src/traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
