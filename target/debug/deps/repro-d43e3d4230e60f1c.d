/root/repo/target/debug/deps/repro-d43e3d4230e60f1c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d43e3d4230e60f1c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
