/root/repo/target/debug/deps/ustore_usb-9fc3d11f7bb0b2f6.d: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

/root/repo/target/debug/deps/ustore_usb-9fc3d11f7bb0b2f6: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

crates/usb/src/lib.rs:
crates/usb/src/host.rs:
crates/usb/src/profile.rs:
