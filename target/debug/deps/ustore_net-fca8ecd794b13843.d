/root/repo/target/debug/deps/ustore_net-fca8ecd794b13843.d: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

/root/repo/target/debug/deps/ustore_net-fca8ecd794b13843: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

crates/net/src/lib.rs:
crates/net/src/blockdev.rs:
crates/net/src/iscsi.rs:
crates/net/src/network.rs:
crates/net/src/rpc.rs:
