/root/repo/target/debug/deps/ustore_cost-3124c3b4e7d900dd.d: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs Cargo.toml

/root/repo/target/debug/deps/libustore_cost-3124c3b4e7d900dd.rmeta: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs Cargo.toml

crates/cost/src/lib.rs:
crates/cost/src/capex.rs:
crates/cost/src/catalog.rs:
crates/cost/src/opex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
