/root/repo/target/debug/deps/properties-3574f7d301fc146e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3574f7d301fc146e: tests/properties.rs

tests/properties.rs:
