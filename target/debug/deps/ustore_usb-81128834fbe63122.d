/root/repo/target/debug/deps/ustore_usb-81128834fbe63122.d: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

/root/repo/target/debug/deps/libustore_usb-81128834fbe63122.rlib: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

/root/repo/target/debug/deps/libustore_usb-81128834fbe63122.rmeta: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs

crates/usb/src/lib.rs:
crates/usb/src/host.rs:
crates/usb/src/profile.rs:
