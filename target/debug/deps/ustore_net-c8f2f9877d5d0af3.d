/root/repo/target/debug/deps/ustore_net-c8f2f9877d5d0af3.d: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

/root/repo/target/debug/deps/libustore_net-c8f2f9877d5d0af3.rlib: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

/root/repo/target/debug/deps/libustore_net-c8f2f9877d5d0af3.rmeta: crates/net/src/lib.rs crates/net/src/blockdev.rs crates/net/src/iscsi.rs crates/net/src/network.rs crates/net/src/rpc.rs

crates/net/src/lib.rs:
crates/net/src/blockdev.rs:
crates/net/src/iscsi.rs:
crates/net/src/network.rs:
crates/net/src/rpc.rs:
