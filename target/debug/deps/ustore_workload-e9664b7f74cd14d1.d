/root/repo/target/debug/deps/ustore_workload-e9664b7f74cd14d1.d: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

/root/repo/target/debug/deps/libustore_workload-e9664b7f74cd14d1.rlib: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

/root/repo/target/debug/deps/libustore_workload-e9664b7f74cd14d1.rmeta: crates/workload/src/lib.rs crates/workload/src/backup.rs crates/workload/src/dfs.rs crates/workload/src/iometer.rs crates/workload/src/traces.rs

crates/workload/src/lib.rs:
crates/workload/src/backup.rs:
crates/workload/src/dfs.rs:
crates/workload/src/iometer.rs:
crates/workload/src/traces.rs:
