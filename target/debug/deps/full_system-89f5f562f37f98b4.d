/root/repo/target/debug/deps/full_system-89f5f562f37f98b4.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-89f5f562f37f98b4: tests/full_system.rs

tests/full_system.rs:
