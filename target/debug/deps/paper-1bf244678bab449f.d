/root/repo/target/debug/deps/paper-1bf244678bab449f.d: crates/bench/benches/paper.rs Cargo.toml

/root/repo/target/debug/deps/libpaper-1bf244678bab449f.rmeta: crates/bench/benches/paper.rs Cargo.toml

crates/bench/benches/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
