/root/repo/target/debug/deps/ustore_consensus-d40177f4fae86bfa.d: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libustore_consensus-d40177f4fae86bfa.rmeta: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs Cargo.toml

crates/consensus/src/lib.rs:
crates/consensus/src/client.rs:
crates/consensus/src/paxos.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
