/root/repo/target/debug/deps/ustore-3d686e04e771a459.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libustore-3d686e04e771a459.rmeta: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/clientlib.rs:
crates/core/src/controller.rs:
crates/core/src/endpoint.rs:
crates/core/src/ids.rs:
crates/core/src/master.rs:
crates/core/src/messages.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
