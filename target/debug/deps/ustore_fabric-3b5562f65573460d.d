/root/repo/target/debug/deps/ustore_fabric-3b5562f65573460d.d: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/libustore_fabric-3b5562f65573460d.rlib: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/libustore_fabric-3b5562f65573460d.rmeta: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/control.rs:
crates/fabric/src/routing.rs:
crates/fabric/src/runtime.rs:
crates/fabric/src/topology.rs:
