/root/repo/target/debug/deps/repro-adeef98e7afeceb0.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-adeef98e7afeceb0.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
