/root/repo/target/debug/deps/ustore-3ae28af757ffc384.d: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs

/root/repo/target/debug/deps/ustore-3ae28af757ffc384: crates/core/src/lib.rs crates/core/src/alloc.rs crates/core/src/clientlib.rs crates/core/src/controller.rs crates/core/src/endpoint.rs crates/core/src/ids.rs crates/core/src/master.rs crates/core/src/messages.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/alloc.rs:
crates/core/src/clientlib.rs:
crates/core/src/controller.rs:
crates/core/src/endpoint.rs:
crates/core/src/ids.rs:
crates/core/src/master.rs:
crates/core/src/messages.rs:
crates/core/src/system.rs:
