/root/repo/target/debug/deps/ustore_cost-f250d44853a24862.d: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

/root/repo/target/debug/deps/libustore_cost-f250d44853a24862.rlib: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

/root/repo/target/debug/deps/libustore_cost-f250d44853a24862.rmeta: crates/cost/src/lib.rs crates/cost/src/capex.rs crates/cost/src/catalog.rs crates/cost/src/opex.rs

crates/cost/src/lib.rs:
crates/cost/src/capex.rs:
crates/cost/src/catalog.rs:
crates/cost/src/opex.rs:
