/root/repo/target/debug/deps/full_system-ba00ed2b6603bd86.d: tests/full_system.rs Cargo.toml

/root/repo/target/debug/deps/libfull_system-ba00ed2b6603bd86.rmeta: tests/full_system.rs Cargo.toml

tests/full_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
