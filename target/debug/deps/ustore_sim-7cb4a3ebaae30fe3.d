/root/repo/target/debug/deps/ustore_sim-7cb4a3ebaae30fe3.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/ustore_sim-7cb4a3ebaae30fe3: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/json.rs crates/sim/src/metrics.rs crates/sim/src/obs.rs crates/sim/src/rng.rs crates/sim/src/span.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/json.rs:
crates/sim/src/metrics.rs:
crates/sim/src/obs.rs:
crates/sim/src/rng.rs:
crates/sim/src/span.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
