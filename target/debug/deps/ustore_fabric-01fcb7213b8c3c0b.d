/root/repo/target/debug/deps/ustore_fabric-01fcb7213b8c3c0b.d: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libustore_fabric-01fcb7213b8c3c0b.rmeta: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/control.rs:
crates/fabric/src/routing.rs:
crates/fabric/src/runtime.rs:
crates/fabric/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
