/root/repo/target/debug/deps/ustore_bench-a9ae4bbd5eff1100.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libustore_bench-a9ae4bbd5eff1100.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/failover.rs crates/bench/src/fig5.rs crates/bench/src/fig6.rs crates/bench/src/hdfs.rs crates/bench/src/power.rs crates/bench/src/report.rs crates/bench/src/table2.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/failover.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig6.rs:
crates/bench/src/hdfs.rs:
crates/bench/src/power.rs:
crates/bench/src/report.rs:
crates/bench/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
