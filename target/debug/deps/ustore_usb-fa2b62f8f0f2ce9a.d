/root/repo/target/debug/deps/ustore_usb-fa2b62f8f0f2ce9a.d: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libustore_usb-fa2b62f8f0f2ce9a.rmeta: crates/usb/src/lib.rs crates/usb/src/host.rs crates/usb/src/profile.rs Cargo.toml

crates/usb/src/lib.rs:
crates/usb/src/host.rs:
crates/usb/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
