/root/repo/target/debug/deps/ustore_consensus-7543a8849061843c.d: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

/root/repo/target/debug/deps/libustore_consensus-7543a8849061843c.rlib: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

/root/repo/target/debug/deps/libustore_consensus-7543a8849061843c.rmeta: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

crates/consensus/src/lib.rs:
crates/consensus/src/client.rs:
crates/consensus/src/paxos.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/store.rs:
