/root/repo/target/debug/deps/ustore_consensus-aa9f223fb1e6bf1c.d: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

/root/repo/target/debug/deps/ustore_consensus-aa9f223fb1e6bf1c: crates/consensus/src/lib.rs crates/consensus/src/client.rs crates/consensus/src/paxos.rs crates/consensus/src/rsm.rs crates/consensus/src/store.rs

crates/consensus/src/lib.rs:
crates/consensus/src/client.rs:
crates/consensus/src/paxos.rs:
crates/consensus/src/rsm.rs:
crates/consensus/src/store.rs:
