/root/repo/target/debug/deps/fault_injection-7ba2a7f62250e009.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-7ba2a7f62250e009: tests/fault_injection.rs

tests/fault_injection.rs:
