/root/repo/target/debug/deps/ustore_fabric-2a2620827e6ea32c.d: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

/root/repo/target/debug/deps/ustore_fabric-2a2620827e6ea32c: crates/fabric/src/lib.rs crates/fabric/src/control.rs crates/fabric/src/routing.rs crates/fabric/src/runtime.rs crates/fabric/src/topology.rs

crates/fabric/src/lib.rs:
crates/fabric/src/control.rs:
crates/fabric/src/routing.rs:
crates/fabric/src/runtime.rs:
crates/fabric/src/topology.rs:
