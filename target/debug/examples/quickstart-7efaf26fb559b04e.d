/root/repo/target/debug/examples/quickstart-7efaf26fb559b04e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7efaf26fb559b04e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
