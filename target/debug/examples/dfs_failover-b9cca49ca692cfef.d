/root/repo/target/debug/examples/dfs_failover-b9cca49ca692cfef.d: examples/dfs_failover.rs Cargo.toml

/root/repo/target/debug/examples/libdfs_failover-b9cca49ca692cfef.rmeta: examples/dfs_failover.rs Cargo.toml

examples/dfs_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
