/root/repo/target/debug/examples/archival_backup-f3d4f02cba07170d.d: examples/archival_backup.rs Cargo.toml

/root/repo/target/debug/examples/libarchival_backup-f3d4f02cba07170d.rmeta: examples/archival_backup.rs Cargo.toml

examples/archival_backup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
