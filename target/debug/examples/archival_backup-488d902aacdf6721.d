/root/repo/target/debug/examples/archival_backup-488d902aacdf6721.d: examples/archival_backup.rs

/root/repo/target/debug/examples/archival_backup-488d902aacdf6721: examples/archival_backup.rs

examples/archival_backup.rs:
