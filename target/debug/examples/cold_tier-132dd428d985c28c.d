/root/repo/target/debug/examples/cold_tier-132dd428d985c28c.d: examples/cold_tier.rs Cargo.toml

/root/repo/target/debug/examples/libcold_tier-132dd428d985c28c.rmeta: examples/cold_tier.rs Cargo.toml

examples/cold_tier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::type_complexity__CLIPPY_HACKERY__-A__CLIPPY_HACKERY__clippy::too_many_arguments__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
