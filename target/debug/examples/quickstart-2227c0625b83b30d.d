/root/repo/target/debug/examples/quickstart-2227c0625b83b30d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2227c0625b83b30d: examples/quickstart.rs

examples/quickstart.rs:
