/root/repo/target/debug/examples/cold_tier-18c2a71773d11244.d: examples/cold_tier.rs

/root/repo/target/debug/examples/cold_tier-18c2a71773d11244: examples/cold_tier.rs

examples/cold_tier.rs:
