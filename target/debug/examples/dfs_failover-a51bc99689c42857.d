/root/repo/target/debug/examples/dfs_failover-a51bc99689c42857.d: examples/dfs_failover.rs

/root/repo/target/debug/examples/dfs_failover-a51bc99689c42857: examples/dfs_failover.rs

examples/dfs_failover.rs:
