//! Edge-case behaviour: the §IV-F adaptive spin-down back-off, the
//! ClientLib's remount deadline, and metadata-store outage handling.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{ClientLibError, Mounted, SpaceInfo, SystemConfig, UStoreSystem};
use ustore_disk::PowerStateKind;
use ustore_fabric::HostId;
use ustore_net::BlockDevice;
use ustore_sim::Sim;

fn run_for(s: &UStoreSystem, secs: u64) {
    s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
}

fn allocate(s: &UStoreSystem, client: &ustore::UStoreClient, service: &str) -> SpaceInfo {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.allocate(&s.sim, service, 1 << 30, move |_, r| {
        *o.borrow_mut() = Some(r.expect("allocate"));
    });
    run_for(s, 8);
    let v = out.borrow_mut().take().expect("allocated");
    v
}

fn mount(s: &UStoreSystem, client: &ustore::UStoreClient, info: &SpaceInfo) -> Mounted {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *o.borrow_mut() = Some(r.expect("mount"));
    });
    run_for(s, 12);
    let v = out.borrow_mut().take().expect("mounted");
    v
}

#[test]
fn churning_disk_gets_its_idle_threshold_doubled() {
    // §IV-F: "if it is detected that the disk is spun up and down too
    // frequently, the host will increase the time interval."
    let mut cfg = SystemConfig::default();
    cfg.endpoint.idle_spin_down = Duration::from_secs(15);
    cfg.endpoint.idle_check = Duration::from_secs(5);
    cfg.endpoint.spin_cycle_window = Duration::from_secs(600);
    cfg.endpoint.spin_cycle_limit = 2;
    let s = UStoreSystem::build(Sim::new(8101), cfg);
    s.settle();
    let client = s.client("churny");
    let info = allocate(&s, &client, "svc");
    let m = mount(&s, &client, &info);
    let disk = s.runtime.disk(info.name.disk);
    // Access every ~35 s: with a 15 s threshold the disk spins down and
    // back up each period, which the EndPoint counts as churn.
    for _ in 0..4 {
        m.read(
            &s.sim,
            0,
            512,
            Box::new(|_, r| {
                r.expect("read");
            }),
        );
        run_for(&s, 35);
    }
    let spin_ups_before = disk.time_in_state(&s.sim, PowerStateKind::SpinningUp);
    // After the threshold doubles past the access period, churn stops.
    for _ in 0..4 {
        m.read(
            &s.sim,
            0,
            512,
            Box::new(|_, r| {
                r.expect("read");
            }),
        );
        run_for(&s, 35);
    }
    let spin_ups_after = disk.time_in_state(&s.sim, PowerStateKind::SpinningUp);
    let early = spin_ups_before.as_secs_f64();
    let late = (spin_ups_after - spin_ups_before).as_secs_f64();
    assert!(
        early >= 14.0,
        "early period churned (>=2 spin-ups): {early}"
    );
    assert!(
        late < early / 2.0,
        "back-off cut churn: early {early:.0}s vs late {late:.0}s of spin-up"
    );
}

#[test]
fn remount_deadline_fails_queued_io_when_no_host_survives() {
    let mut cfg = SystemConfig::default();
    cfg.clientlib.remount_deadline = Duration::from_secs(8);
    let s = UStoreSystem::build(Sim::new(8102), cfg);
    s.settle();
    let client = s.client("doomed");
    let info = allocate(&s, &client, "svc");
    let m = mount(&s, &client, &info);
    // Kill every host: nothing can serve the space again.
    for h in 0..4 {
        s.kill_host(HostId(h));
    }
    let got = Rc::new(Cell::new(false));
    let g = got.clone();
    m.read(
        &s.sim,
        0,
        16,
        Box::new(move |_, r| {
            assert!(r.is_err(), "IO fails once the remount deadline passes");
            g.set(true);
        }),
    );
    run_for(&s, 60);
    assert!(got.get(), "queued IO was failed, not leaked");
}

#[test]
fn allocate_fails_cleanly_when_metadata_store_is_down() {
    // §IV-A stores StorAlloc synchronously: if the coordination cluster
    // has no quorum, allocation must fail rather than hand out space the
    // metadata does not record.
    let s = UStoreSystem::prototype(8103);
    s.settle();
    // Take down a majority of the coordination cluster.
    for c in s.coord.iter().take(3) {
        c.pause();
        s.net.set_down(&s.sim, &c.addr());
    }
    run_for(&s, 5);
    let client = s.client("unlucky");
    let got = Rc::new(Cell::new(None));
    let g = got.clone();
    client.allocate(&s.sim, "svc", 1 << 30, move |_, r| {
        g.set(Some(r.is_err()));
    });
    run_for(&s, 60);
    if got.get().is_none() {
        s.sim.with_trace(|t| {
            for e in t.events().iter().rev().take(40) {
                eprintln!("{e}");
            }
        });
    }
    assert_eq!(got.get(), Some(true), "allocation failed cleanly");
    let _ = ClientLibError::MasterUnreachable; // error type exercised above
}

#[test]
fn release_frees_space_for_reuse_end_to_end() {
    let s = UStoreSystem::prototype(8104);
    s.settle();
    let client = s.client("app");
    // Fill a disk-sized region, release, and re-allocate.
    let a = allocate(&s, &client, "svc");
    let released = Rc::new(Cell::new(false));
    let r2 = released.clone();
    client.release(&s.sim, a.name, move |_, r| {
        r.expect("release");
        r2.set(true);
    });
    run_for(&s, 8);
    assert!(released.get());
    let b = allocate(&s, &client, "svc");
    assert_eq!(b.name.disk, a.name.disk, "space reused on the same disk");
    assert_ne!(b.name.space, a.name.space, "space ids are fresh");
    // The released target is gone from the EndPoint.
    let targets: Vec<String> = s
        .endpoints
        .iter()
        .flat_map(|e| e.exported_targets())
        .collect();
    assert!(
        !targets.contains(&a.name.target_name()),
        "old target withdrawn"
    );
    assert!(
        targets.contains(&b.name.target_name()),
        "new target exported"
    );
}
