//! Teardown hygiene: repeated in-process pod runs must hold live heap
//! memory flat.
//!
//! The simulator's teardown sweep ([`ustore_sim::Sim::teardown`]) exists
//! so that `Rc` cycles between the network, RPC nodes, client mounts and
//! their scheduled timers are broken when a run ends. Without it, every
//! `repro` invocation that builds several pods in one process (perf and
//! slo build five) would leak a whole deployment per run. This test pins
//! the sweep down with a live-byte-counting global allocator: after a
//! warm-up run, four more identical runs must not grow the live heap.
//!
//! This file is its own test binary on purpose — a `#[global_allocator]`
//! is process-wide, and the single test keeps the counter honest.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use ustore_bench::podscale::{run_podscale, run_podscale_sharded, PodConfig};

/// Delegates to the system allocator while tracking net live bytes.
struct LiveBytes;

static LIVE: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for LiveBytes {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: LiveBytes = LiveBytes;

fn live() -> i64 {
    LIVE.load(Ordering::Relaxed)
}

/// Runs `f` repeatedly and asserts the live heap stays flat run-over-run.
///
/// The first call is a warm-up (lazy statics, thread-local scratch, the
/// test harness's own buffers); subsequent calls must each return the
/// heap to within `tolerance` bytes of the post-warm-up baseline. A
/// leaked deployment would show up as megabytes per run.
fn assert_flat(label: &str, tolerance: i64, mut f: impl FnMut()) {
    f();
    let baseline = live();
    for round in 0..4 {
        f();
        let now = live();
        assert!(
            now - baseline <= tolerance,
            "{label}: live heap grew {} bytes over {} run(s) (baseline {baseline}, \
             tolerance {tolerance}) — a torn-down pod is still reachable",
            now - baseline,
            round + 1,
        );
    }
}

#[test]
fn repeated_pod_runs_hold_live_memory_flat() {
    let cfg = PodConfig::tiny();
    // Single-world engine: the classic path relies purely on the
    // Sim::teardown sweep to break the deployment's Rc cycles.
    assert_flat("classic tiny pod", 256 * 1024, || {
        let run = run_podscale(41, &cfg);
        assert!(run.writes_ok > 0, "workload served");
    });
    // Sharded engine: per-world sims are torn down by their executor
    // threads; the join must not strand world state either.
    assert_flat("sharded tiny pod", 256 * 1024, || {
        let run = run_podscale_sharded(42, &cfg, 2);
        assert!(run.writes_ok > 0, "workload served");
    });
    // The partitioned+leased shape adds partition coordinator groups and
    // the client lease map — those must be swept too.
    let leased = PodConfig::tiny().partitioned();
    assert_flat("partitioned leased tiny pod", 256 * 1024, || {
        let run = run_podscale_sharded(43, &leased, 2);
        assert!(run.writes_ok > 0, "workload served");
    });
}
