//! Fault-injection tests: the failure domains of §IV-E (hosts,
//! interconnect fabric, disks) plus message-level network trouble,
//! exercised through the full stack.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{HealthSignal, Mounted, SpaceInfo, SystemConfig, UStoreSystem, WatchdogConfig};
use ustore_fabric::{Component, DiskId, HostId, HubId};
use ustore_net::{BlockDevice, NetConfig};
use ustore_sim::{ScraperConfig, Sim};

fn run_for(s: &UStoreSystem, secs: u64) {
    s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
}

fn allocate(s: &UStoreSystem, client: &ustore::UStoreClient, service: &str) -> SpaceInfo {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.allocate(&s.sim, service, 1 << 30, move |_, r| {
        *o.borrow_mut() = Some(r.expect("allocate"));
    });
    run_for(s, 8);
    let v = out.borrow_mut().take().expect("allocated");
    v
}

fn mount(s: &UStoreSystem, client: &ustore::UStoreClient, info: &SpaceInfo) -> Mounted {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *o.borrow_mut() = Some(r.expect("mount"));
    });
    run_for(s, 12);
    let v = out.borrow_mut().take().expect("mounted");
    v
}

#[test]
fn system_works_over_lossy_network() {
    // 2% message loss across the whole deployment: RPC retries and
    // timeouts must absorb it.
    let cfg = SystemConfig {
        net: NetConfig {
            loss_probability: 0.02,
            ..NetConfig::default()
        },
        ..SystemConfig::default()
    };
    let s = UStoreSystem::build(Sim::new(7001), cfg);
    s.settle();
    run_for(&s, 10);
    assert!(s.active_master().is_some(), "election survives loss");
    let client = s.client("lossy");
    let info = allocate(&s, &client, "svc");
    let m = mount(&s, &client, &info);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    let m2 = m.clone();
    m.write(
        &s.sim,
        0,
        vec![9u8; 8192],
        Box::new(move |sim, r| {
            r.expect("write despite loss");
            m2.read(
                sim,
                0,
                8192,
                Box::new(move |_, r| {
                    assert_eq!(r.expect("read despite loss"), vec![9u8; 8192]);
                    o.set(true);
                }),
            );
        }),
    );
    run_for(&s, 30);
    assert!(ok.get());
}

#[test]
fn disk_medium_error_surfaces_to_the_client() {
    let s = UStoreSystem::prototype(7002);
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc");
    let m = mount(&s, &client, &info);
    // Seed data, then inject a latent sector error under it (§IV-E cites
    // LSEs as a studied failure class).
    m.write(
        &s.sim,
        0,
        vec![5u8; 4096],
        Box::new(|_, r| r.expect("write")),
    );
    run_for(&s, 2);
    // The extent's physical offset is not 0 in general; hit page 0 of the
    // *space* by injecting at the disk offset behind it. The first space
    // on a fresh disk starts at extent offset 0.
    s.runtime.disk(info.name.disk).inject_bad_page(0);
    let got = Rc::new(Cell::new(false));
    let g = got.clone();
    let m2 = m.clone();
    m.read(
        &s.sim,
        0,
        4096,
        Box::new(move |sim, r| {
            // The ClientLib retries transport-level failures but an IO error
            // is final for this op.
            assert!(r.is_err(), "medium error surfaced");
            // A full overwrite repairs the page, after which reads work.
            let g2 = g.clone();
            let m3 = m2.clone();
            m2.write(
                sim,
                0,
                vec![6u8; 4096],
                Box::new(move |sim, r| {
                    r.expect("repair write");
                    m3.read(
                        sim,
                        0,
                        4096,
                        Box::new(move |_, r| {
                            assert_eq!(r.expect("post-repair read"), vec![6u8; 4096]);
                            g2.set(true);
                        }),
                    );
                }),
            );
        }),
    );
    run_for(&s, 60);
    assert!(got.get());
}

#[test]
fn hub_failure_orphans_subtree_and_repair_restores() {
    let s = UStoreSystem::prototype(7003);
    s.settle();
    // Fail a leaf hub: its whole disk group loses its path (the hub and
    // its feeding switch are one failure unit, §IV-E).
    let leaf_hub = s.runtime.with_state(|st| {
        st.topology()
            .hubs()
            .find(|h| {
                st.topology()
                    .hub_upstream(*h)
                    .is_some_and(|up| !matches!(up, ustore_fabric::UpRef::Host(_)))
            })
            .expect("leaf hub exists")
    });
    let orphaned_before = s.runtime.with_state(|st| st.orphaned_disks().len());
    assert_eq!(orphaned_before, 0);
    s.runtime
        .with_state_mut(|st| st.fail(Component::Hub(leaf_hub)));
    let orphans = s.runtime.with_state(|st| st.orphaned_disks());
    assert!(!orphans.is_empty(), "hub failure orphans its group");
    // Repair brings the paths back.
    s.runtime
        .with_state_mut(|st| st.repair(Component::Hub(leaf_hub)));
    assert!(s.runtime.with_state(|st| st.orphaned_disks().is_empty()));
}

#[test]
fn disk_hardware_failure_is_isolated_and_reported() {
    let s = UStoreSystem::prototype(7004);
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc");
    let m = mount(&s, &client, &info);
    // Fail a *different* disk: our IO is unaffected.
    let other = DiskId((info.name.disk.0 + 5) % 16);
    s.runtime.disk(other).set_failed(&s.sim, true);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    m.write(
        &s.sim,
        0,
        vec![1u8; 512],
        Box::new(move |_, r| {
            r.expect("unrelated disk failure does not affect us");
            o.set(true);
        }),
    );
    run_for(&s, 10);
    assert!(ok.get());
    // UStore "delegates data recovery of failed disks to the upper layer"
    // (§IV-E): IO against the failed disk errors rather than hanging.
    let failed_err = Rc::new(Cell::new(false));
    let f = failed_err.clone();
    s.runtime.read(&s.sim, other, 0, 512, move |_, r| {
        assert!(r.is_err());
        f.set(true);
    });
    run_for(&s, 5);
    assert!(failed_err.get());
}

#[test]
fn control_plane_survives_both_microcontroller_hosts_cycling() {
    let s = UStoreSystem::prototype(7005);
    s.settle();
    // Host 0 (active microcontroller) dies; backup takes over.
    s.kill_host(HostId(0));
    run_for(&s, 20);
    // Disks recovered somewhere.
    for d in 0..4u32 {
        assert!(
            s.runtime.attached_host(DiskId(d)).is_some(),
            "disk{d} reattached"
        );
    }
    // Host 0 comes back; control plane remains usable afterwards.
    s.restore_host(HostId(0));
    run_for(&s, 20);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    s.runtime.execute(
        &s.sim,
        vec![
            (DiskId(4), HostId(0)),
            (DiskId(5), HostId(0)),
            (DiskId(6), HostId(0)),
            (DiskId(7), HostId(0)),
        ],
        move |_, r| {
            r.expect("reconfiguration after repair");
            o.set(true);
        },
    );
    run_for(&s, 30);
    assert!(ok.get());
    let _ = HubId(0);
}

#[test]
fn host_side_hub_failure_reroutes_disks_automatically() {
    // §IV-E: "If a device in the interconnect fabric fails, the Master
    // switches away the paths going through this device."
    let s = UStoreSystem::prototype(7006);
    s.settle();
    // Hub 0 is host 0's root hub in the prototype build order; killing it
    // makes host 0's disks vanish from every USB tree while the host
    // itself stays alive and heartbeating.
    let victim_hub = HubId(0);
    let before: Vec<DiskId> = (0..4).map(DiskId).collect();
    for d in &before {
        assert_eq!(s.runtime.attached_host(*d), Some(HostId(0)));
    }
    s.runtime.hub_failed(&s.sim, victim_hub);
    assert!(s.runtime.attached_host(DiskId(0)).is_none(), "path gone");
    // The Master notices the disks missing from heartbeats and reroutes
    // them through the surviving hubs to other hosts.
    run_for(&s, 30);
    for d in &before {
        let host = s.runtime.attached_host(*d);
        assert!(
            host.is_some() && host != Some(HostId(0)),
            "{d} rerouted: {host:?}"
        );
        assert!(s.runtime.disk_ready(*d), "{d} enumerated on its new host");
    }
}

#[test]
fn leaf_hub_failure_is_reported_as_unrecoverable() {
    let s = UStoreSystem::prototype(7007);
    s.settle();
    // A leaf hub sits on every path of its disk group: no reroute exists.
    let leaf_hub = s.runtime.with_state(|st| {
        st.topology()
            .hubs()
            .find(|h| {
                st.topology()
                    .hub_upstream(*h)
                    .is_some_and(|up| matches!(up, ustore_fabric::UpRef::Switch(_)))
            })
            .expect("leaf hub behind a switch")
    });
    s.runtime.hub_failed(&s.sim, leaf_hub);
    run_for(&s, 30);
    // The master logged the repair request and the group stays dark.
    let reported = s.sim.with_trace(|t| t.find("needs repair").is_some());
    assert!(
        reported,
        "unrecoverable failure reported to the administrator"
    );
    let orphans = s.runtime.with_state(|st| st.orphaned_disks());
    assert_eq!(orphans.len(), 4, "the leaf hub's group awaits repair");
    // Repair restores service.
    s.runtime.hub_repaired(&s.sim, leaf_hub);
    run_for(&s, 15);
    assert!(s.runtime.with_state(|st| st.orphaned_disks().is_empty()));
}

#[test]
fn shared_hub_death_mid_read_storm_remounts_the_whole_cohort() {
    // A shared (host-root) hub dies while every disk behind it is under a
    // read storm. The master must pull the whole hub cohort over to
    // surviving hosts, the storm must resume, and the watchdog must have
    // seen the detach storm and logged it as properly-attributed spans.
    let s = UStoreSystem::prototype(7009);
    s.settle();
    let scraper = s.start_telemetry(ScraperConfig {
        interval: Duration::from_millis(250),
        retention: 8192,
    });
    let dog = s
        .install_watchdog(&scraper, WatchdogConfig::default())
        .expect("active master after settle");

    // Hub 0 is host 0's root hub in the prototype build order; its cohort
    // is disks 0-3.
    let cohort: Vec<DiskId> = (0..4).map(DiskId).collect();
    for d in &cohort {
        assert_eq!(s.runtime.attached_host(*d), Some(HostId(0)));
    }

    // Read storm: scattered 4 KiB reads against every cohort disk. Errors
    // during the outage window are expected; the counters let us assert
    // the storm was flowing before the kill and resumed after recovery.
    let oks = Rc::new(Cell::new(0u64));
    for (i, d) in cohort.iter().copied().enumerate() {
        let rt = s.runtime.clone();
        let oks = oks.clone();
        let k = Rc::new(Cell::new(0u64));
        s.sim.every(
            Duration::from_millis(23 * (i as u64 + 1)),
            Duration::from_millis(40),
            move |sim| {
                let n = k.get();
                k.set(n + 1);
                let offset = (n * 7919 % ((64 << 20) / 4096)) * 4096;
                let oks = oks.clone();
                rt.read(sim, d, offset, 4096, move |_, r| {
                    if r.is_ok() {
                        oks.set(oks.get() + 1);
                    }
                });
            },
        );
    }
    run_for(&s, 5);
    let before_kill = oks.get();
    assert!(before_kill > 0, "storm flowing before the kill");

    s.runtime.hub_failed(&s.sim, HubId(0));
    assert!(s.runtime.attached_host(DiskId(0)).is_none(), "path gone");
    run_for(&s, 30);

    // The whole cohort remounted on surviving hosts.
    for d in &cohort {
        let host = s.runtime.attached_host(*d);
        assert!(
            host.is_some() && host != Some(HostId(0)),
            "{d} pulled to a surviving host: {host:?}"
        );
        assert!(s.runtime.disk_ready(*d), "{d} enumerated on its new host");
    }
    let reported = s
        .sim
        .with_trace(|t| t.find("vanished from all USB trees").is_some());
    assert!(reported, "master attributed the loss to the fabric sweep");

    // The storm resumed against the remounted cohort.
    let after_recovery = oks.get();
    run_for(&s, 5);
    assert!(
        oks.get() > after_recovery,
        "reads flow again after the cohort remount"
    );

    // The watchdog saw the mass detach as an enumeration storm on host 0's
    // link and recorded it both as an event and as an attributed span.
    let events = dog.events();
    let storm = events
        .iter()
        .find(|e| e.signal == HealthSignal::EnumStorm)
        .expect("watchdog recorded the detach storm");
    s.sim.with_spans(|t| {
        let span = t
            .by_name("watchdog.event")
            .find(|sp| {
                sp.attr("signal") == Some("enum_storm")
                    && sp.attr("component") == Some(&storm.component)
            })
            .expect("enum-storm breach logged as a watchdog.event span");
        assert_eq!(&*span.component, "watchdog");
        assert!(
            span.parent.is_none(),
            "watchdog breach instants are roots, not children of client IO"
        );
        assert!(span.attr("value").is_some() && span.attr("threshold").is_some());
    });
}

#[test]
fn failover_emits_causally_ordered_span_tree() {
    // §I's recovery pipeline as telemetry: killing a host must produce a
    // `failover` span whose phases appear in causal order — the master
    // detects before the fabric reconfigures, and the fabric reconfigures
    // (locking before actuating its switches) before anything remounts.
    let s = UStoreSystem::prototype(7008);
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc");
    let mounted = mount(&s, &client, &info);
    mounted.write(&s.sim, 0, vec![9; 512], Box::new(|_, r| r.expect("write")));
    run_for(&s, 2);

    let victim = s.runtime.attached_host(info.name.disk).expect("attached");
    s.kill_host(victim);
    let got = Rc::new(Cell::new(false));
    let g = got.clone();
    mounted.read(
        &s.sim,
        0,
        512,
        Box::new(move |_, r| {
            r.expect("read after failover");
            g.set(true);
        }),
    );
    run_for(&s, 30);
    assert!(got.get(), "client recovered");

    s.sim.with_spans(|t| {
        let root = t.by_name("failover").last().expect("failover root span");
        let phases: Vec<&str> = t.children(root.id).map(|c| &*c.name).collect();
        assert_eq!(
            phases,
            [
                "failover.detection",
                "failover.reconfiguration",
                "failover.remount"
            ],
            "phases parented under the failover root, in order"
        );
        // Causality across components, asserted on spans rather than on
        // trace strings.
        assert!(t.all_before("failover.detection", "fabric.execute"));
        assert!(t.all_before("fabric.lock", "fabric.actuate"));
        // The reconfiguration phase owns the fabric command, and the
        // remount phase owns the re-export — and the former precedes the
        // latter (startup-time exports are outside the failover tree, so
        // the ordering is asserted within it).
        let phase_id = |n: &str| {
            t.children(root.id)
                .find(|c| &*c.name == n)
                .expect("phase")
                .id
        };
        let exec = t
            .children(phase_id("failover.reconfiguration"))
            .find(|c| &*c.name == "fabric.execute")
            .expect("fabric command nested under the reconfiguration phase");
        let export = t
            .children(phase_id("failover.remount"))
            .find(|c| &*c.name == "endpoint.export")
            .expect("re-export nested under the remount phase");
        assert!(
            exec.end.expect("execute closed") <= export.start,
            "fabric reconfigured before the endpoint re-exported"
        );
    });

    // The registry carries the same story as counters.
    let m = s.sim.metrics_snapshot();
    assert!(m.counter("fabric", "fabric.switch_flips") >= 1);
    let master_failovers: u64 = (0..3)
        .map(|i| m.counter(&format!("master-{i}"), "master.failovers"))
        .sum();
    assert!(master_failovers >= 1, "a master recorded the failover");
}
