//! Whole-deployment integration tests spanning every crate: hardware
//! simulation, consensus, fabric, the UStore software stack and client
//! workloads in one simulator.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use ustore::{Mounted, SpaceInfo, SystemConfig, UStoreSystem, UnitId};
use ustore_fabric::HostId;
use ustore_net::BlockDevice;
use ustore_sim::Sim;

fn run_for(s: &UStoreSystem, secs: u64) {
    s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
}

fn allocate(
    s: &UStoreSystem,
    client: &ustore::UStoreClient,
    service: &str,
    size: u64,
) -> SpaceInfo {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.allocate(&s.sim, service, size, move |_, r| {
        *o.borrow_mut() = Some(r.expect("allocate"));
    });
    run_for(s, 8);
    let v = out.borrow_mut().take().expect("allocated");
    v
}

fn mount(s: &UStoreSystem, client: &ustore::UStoreClient, info: &SpaceInfo) -> Mounted {
    let out = Rc::new(RefCell::new(None));
    let o = out.clone();
    client.mount(&s.sim, info.name, move |_, r| {
        *o.borrow_mut() = Some(r.expect("mount"));
    });
    run_for(s, 12);
    let v = out.borrow_mut().take().expect("mounted");
    v
}

#[test]
fn multiple_clients_spread_across_disks_and_hosts() {
    let s = UStoreSystem::prototype(9001);
    s.settle();
    let mut disks = std::collections::BTreeSet::new();
    let mut hosts = std::collections::BTreeSet::new();
    for i in 0..6 {
        let c = s.client(&format!("tenant-{i}"));
        let info = allocate(&s, &c, &format!("svc-{i}"), 1 << 30);
        disks.insert(info.name.disk);
        hosts.insert(info.host_addr.expect("host known"));
    }
    // The balance rule spreads distinct services over many disks, and
    // those disks span several hosts.
    assert!(disks.len() >= 4, "spread over {} disks", disks.len());
    assert!(hosts.len() >= 2, "spread over {} hosts", hosts.len());
}

#[test]
fn sequential_failures_of_two_hosts_are_survivable() {
    let s = UStoreSystem::prototype(9002);
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc", 1 << 30);
    let m = mount(&s, &client, &info);
    m.write(
        &s.sim,
        0,
        b"durable".to_vec(),
        Box::new(|_, r| r.expect("write")),
    );
    run_for(&s, 2);
    // Kill the serving host; wait for recovery; then kill the next one.
    for round in 0..2 {
        let victim = s.runtime.attached_host(info.name.disk).expect("attached");
        s.kill_host(victim);
        let ok = Rc::new(Cell::new(false));
        let o = ok.clone();
        m.read(
            &s.sim,
            0,
            7,
            Box::new(move |_, r| {
                assert_eq!(r.expect("read"), b"durable".to_vec());
                o.set(true);
            }),
        );
        run_for(&s, 30);
        assert!(ok.get(), "round {round}: recovered");
    }
    // Two hosts dead, data still reachable on the remaining two.
    assert!(m.remount_count() >= 3);
}

#[test]
fn host_repair_rejoins_the_pool() {
    let s = UStoreSystem::prototype(9003);
    s.settle();
    let master = s.active_master().expect("active").clone();
    s.kill_host(HostId(3));
    run_for(&s, 15);
    assert!(!master.host_alive(UnitId(0), HostId(3)));
    s.restore_host(HostId(3));
    run_for(&s, 15);
    assert!(
        master.host_alive(UnitId(0), HostId(3)),
        "heartbeats resumed"
    );
}

#[test]
fn simultaneous_host_and_master_failure() {
    let s = UStoreSystem::prototype(9004);
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc", 1 << 30);
    let m = mount(&s, &client, &info);
    m.write(
        &s.sim,
        0,
        b"both".to_vec(),
        Box::new(|_, r| r.expect("write")),
    );
    run_for(&s, 2);
    // Kill the active master AND the serving host at the same instant.
    let active_idx = s
        .masters
        .iter()
        .position(|x| x.is_active())
        .expect("active");
    let victim = s.runtime.attached_host(info.name.disk).expect("attached");
    s.kill_master(active_idx);
    s.kill_host(victim);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    m.read(
        &s.sim,
        0,
        4,
        Box::new(move |_, r| {
            assert_eq!(r.expect("read"), b"both".to_vec());
            o.set(true);
        }),
    );
    // Standby master must first win the election, rebuild SysStat from
    // heartbeats, detect the dead host and orchestrate the move.
    run_for(&s, 50);
    assert!(ok.get(), "recovered from double failure");
    assert!(s.masters[1 - active_idx].is_active());
}

#[test]
fn data_integrity_across_many_spaces() {
    let s = UStoreSystem::prototype(9005);
    s.settle();
    let client = s.client("verify");
    let mut mounts = Vec::new();
    for i in 0..4 {
        let info = allocate(&s, &client, &format!("it-{i}"), 64 << 20);
        mounts.push((i as u8, mount(&s, &client, &info)));
    }
    let pending = Rc::new(Cell::new(0u32));
    for (tag, m) in &mounts {
        let payload: Vec<u8> = (0..65536u32).map(|j| (j as u8) ^ tag).collect();
        let expect = payload.clone();
        let m2 = m.clone();
        let p = pending.clone();
        p.set(p.get() + 1);
        let off = u64::from(*tag) * 1_000_000;
        m.write(
            &s.sim,
            off,
            payload,
            Box::new(move |sim, r| {
                r.expect("write");
                let p2 = p.clone();
                m2.read(
                    sim,
                    off,
                    65536,
                    Box::new(move |_, r| {
                        assert_eq!(r.expect("read"), expect);
                        p2.set(p2.get() - 1);
                    }),
                );
            }),
        );
    }
    run_for(&s, 30);
    assert_eq!(pending.get(), 0, "all verifications completed");
}

#[test]
fn bigger_unit_with_more_hosts_boots() {
    // A 32-disk, 8-host unit exercises the generalized builders.
    let cfg = SystemConfig {
        hosts: 8,
        disks: 32,
        ..SystemConfig::default()
    };
    let s = UStoreSystem::build(Sim::new(9006), cfg);
    s.settle();
    run_for(&s, 10);
    assert_eq!(s.ready_disks().len(), 32);
    assert!(s.active_master().is_some());
    let client = s.client("big");
    let info = allocate(&s, &client, "svc", 1 << 30);
    let m = mount(&s, &client, &info);
    assert_eq!(m.capacity(), 1 << 30);
}

#[test]
fn deterministic_replay_same_seed_same_outcome() {
    let run = |seed: u64| -> (u64, String) {
        let s = UStoreSystem::prototype(seed);
        s.settle();
        let client = s.client("det");
        let info = allocate(&s, &client, "svc", 1 << 30);
        (s.sim.events_processed(), info.name.to_string())
    };
    let a = run(777);
    let b = run(777);
    assert_eq!(a, b, "same seed, same world");
    let c = run(778);
    assert_ne!(a.0, c.0, "different seed perturbs event count");
}

#[test]
fn multi_unit_deployment_allocates_and_fails_over_per_unit() {
    // §IV: "A typical UStore deployment is composed of one Master and a
    // number of deploy units."
    let cfg = SystemConfig {
        units: 2,
        ..SystemConfig::default()
    };
    let s = UStoreSystem::build(Sim::new(9007), cfg);
    s.settle();
    assert_eq!(s.runtimes.len(), 2);
    assert_eq!(s.endpoints.len(), 8);
    assert_eq!(s.controllers.len(), 4);
    let client = s.client("tenant");
    // 32 disks available; the balance rule fills unit 0's 16 disks with
    // one service each before spilling into unit 1.
    let mut units_seen = std::collections::BTreeSet::new();
    let mut infos = Vec::new();
    for i in 0..18 {
        let info = allocate(&s, &client, &format!("svc-{i}"), 1 << 30);
        units_seen.insert(info.name.unit);
        infos.push(info);
    }
    assert_eq!(units_seen.len(), 2, "allocations span both units");
    // Mount a space from unit 1 and kill its serving host: failover is
    // handled by unit 1's controllers without touching unit 0.
    let info = infos
        .iter()
        .find(|i| i.name.unit == UnitId(1))
        .expect("unit 1 allocation");
    let m = mount(&s, &client, info);
    m.write(
        &s.sim,
        0,
        b"u1".to_vec(),
        Box::new(|_, r| r.expect("write")),
    );
    run_for(&s, 2);
    let rt1 = &s.runtimes[1];
    let victim = rt1.attached_host(info.name.disk).expect("attached");
    let unit0_map_before = s.runtimes[0].with_state(|st| st.attachment_map());
    s.kill_unit_host(UnitId(1), victim);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    m.read(
        &s.sim,
        0,
        2,
        Box::new(move |_, r| {
            assert_eq!(r.expect("read after unit-1 failover"), b"u1".to_vec());
            o.set(true);
        }),
    );
    run_for(&s, 30);
    assert!(ok.get(), "unit 1 recovered");
    // Unit 0 was untouched by unit 1's failover.
    let unit0_map_after = s.runtimes[0].with_state(|st| st.attachment_map());
    assert_eq!(unit0_map_before, unit0_map_after);
    assert_ne!(
        s.runtimes[1].attached_host(info.name.disk),
        Some(victim),
        "disk left the dead host"
    );
}

#[test]
fn stale_location_lease_is_invalidated_by_io_failure() {
    // A long location lease (60 virtual seconds — longer than the whole
    // test) would pin every directory answer to its first resolution.
    // The lease contract is that IO failures kill the cached entry, so a
    // remount after a host death re-resolves through the Master instead
    // of retrying the dead endpoint off a stale lease.
    let s = UStoreSystem::build(
        Sim::new(9010),
        SystemConfig {
            clientlib: ustore::ClientLibConfig {
                location_lease: Some(Duration::from_secs(60)),
                ..ustore::ClientLibConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    s.settle();
    let client = s.client("app");
    let info = allocate(&s, &client, "svc", 1 << 30);
    // Prime the lease with a directory lookup.
    let primed = Rc::new(Cell::new(false));
    let p = primed.clone();
    client.lookup(&s.sim, info.name, move |_, r| {
        r.expect("lookup");
        p.set(true);
    });
    run_for(&s, 2);
    assert!(primed.get(), "lookup served");
    let old_host = client
        .cached_location(&s.sim, info.name)
        .expect("location leased")
        .host_addr
        .expect("host known");
    let m = mount(&s, &client, &info);
    m.write(
        &s.sim,
        0,
        b"leased".to_vec(),
        Box::new(|_, r| r.expect("write")),
    );
    run_for(&s, 2);
    // Kill the serving host mid-lease and issue IO against it.
    let victim = s.runtime.attached_host(info.name.disk).expect("attached");
    s.kill_host(victim);
    let ok = Rc::new(Cell::new(false));
    let o = ok.clone();
    m.read(
        &s.sim,
        0,
        6,
        Box::new(move |_, r| {
            assert_eq!(r.expect("read after failover"), b"leased".to_vec());
            o.set(true);
        }),
    );
    run_for(&s, 30);
    assert!(ok.get(), "IO recovered past the dead endpoint");
    assert!(m.remount_count() >= 1, "remount machinery re-resolved");
    // The stale lease did not survive: whatever is cached now (the
    // remount's fresh answer, or nothing) no longer names the dead host.
    if let Some(now) = client.cached_location(&s.sim, info.name) {
        assert_ne!(
            now.host_addr,
            Some(old_host.clone()),
            "lease still points at the dead host"
        );
    }
    // And a fresh directory lookup resolves to the new serving host.
    let resolved = Rc::new(RefCell::new(None));
    let o = resolved.clone();
    client.lookup(&s.sim, info.name, move |_, r| {
        *o.borrow_mut() = Some(r.expect("re-resolve"));
    });
    run_for(&s, 5);
    let fresh = resolved.borrow_mut().take().expect("lookup served");
    assert_ne!(
        fresh.host_addr,
        Some(old_host),
        "directory still names the dead host"
    );
}
