//! Randomized property tests over the core data structures and invariants,
//! driven by the deterministic [`SimRng`] (no external framework needed).
//!
//! - Any switch configuration partitions the fabric into non-overlapping
//!   trees (the validity claim of §III-A).
//! - Algorithm 1 never moves a disk that was not named in the command.
//! - The allocator never hands out overlapping extents.
//! - Paxos acceptors never decide two different values.
//! - The znode store is a deterministic state machine.
//! - `MetricsRegistry::diff`/`merge` round-trip on counters.
//! - The Prometheus exporter is byte-stable under insertion order.
//!
//! Each property runs a fixed number of seeded cases; on failure the case
//! seed is in the panic message so the exact input can be replayed.

use std::collections::{BTreeMap, BTreeSet};

use ustore::{Allocator, UnitId};
use ustore_consensus::{AcceptReply, Acceptor, Ballot, Command, PrepareReply, ZnodeStore};
use ustore_fabric::{DiskId, FabricState, HostId, Topology};
use ustore_sim::{export, Histogram, MetricsRegistry, SimRng};

const CASES: u64 = 64;

fn arbitrary_fabric(rng: &mut SimRng) -> (FabricState, u32, u32) {
    // hosts in {2,4}, disks 4..=32, fanin 2..=5
    let hosts = if rng.chance(0.5) { 2u32 } else { 4u32 };
    let disks = rng.range_u64(4, 33) as u32;
    let fanin = rng.range_u64(2, 6) as usize;
    let (t, cfg) = Topology::upper_switched(hosts, disks, fanin);
    (FabricState::new(t, cfg), hosts, disks)
}

/// Random switch settings always leave each disk attached to at most
/// one host, and every attachment is consistent with a real path.
#[test]
fn any_switch_config_partitions_into_trees() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xA11CE + case);
        let (mut fabric, hosts, disks) = arbitrary_fabric(&mut rng);
        let switches: Vec<_> = fabric.topology().switches().collect();
        let flips = rng.usize_below(128);
        for i in 0..flips {
            if switches.is_empty() {
                break;
            }
            let s = switches[i % switches.len()];
            if rng.chance(0.5) {
                let cur = fabric.switch_pos(s).expect("switch exists");
                fabric.set_switch(s, cur.flip());
            }
        }
        for d in 0..disks {
            let host = fabric.attached_host(DiskId(d));
            if let Some(h) = host {
                assert!(h.0 < hosts, "case {case}: attachment to a real host");
                // Consistency: the required path for that host needs no
                // switch turns under the current config.
                let path = fabric.path_switches(DiskId(d), h).expect("path exists");
                for (s, pos) in path {
                    assert_eq!(fabric.switch_pos(s), Some(pos), "case {case}");
                }
            }
        }
    }
}

/// Algorithm 1 either errors or produces turns that move exactly the
/// requested disks (plus nothing attached elsewhere).
#[test]
fn switches_to_turn_never_steals_unrelated_disks() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xB0B0 + case);
        let (fabric, hosts, disks) = arbitrary_fabric(&mut rng);
        let moved = rng.u64_below(32) as u32;
        let target = rng.u64_below(4) as u32;
        let d = DiskId(moved % disks);
        let h = HostId(target % hosts);
        let before = fabric.attachment_map();
        if let Ok(turns) = fabric.switches_to_turn(&[(d, h)]) {
            let mut after = fabric.clone();
            after.apply_turns(&turns);
            assert_eq!(after.attached_host(d), Some(h), "case {case}");
            for (other, old_host) in &before {
                if *other != d {
                    assert_eq!(
                        after.attached_host(*other),
                        Some(*old_host),
                        "case {case}: unrelated disk moved"
                    );
                }
            }
        }
    }
}

/// The allocator never double-books bytes on a disk.
#[test]
fn allocator_extents_never_overlap() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xA110C + case);
        let mut a = Allocator::new();
        for d in 0..3u32 {
            a.register_disk(UnitId(0), ustore_fabric::DiskId(d), 4096);
        }
        let mut live = Vec::new();
        let empty = BTreeMap::new();
        let n = 1 + rng.usize_below(39);
        for _ in 0..n {
            let size = rng.range_u64(1, 1001);
            if let Ok(got) = a.allocate("svc", size, &empty, None) {
                live.push(got.name);
            }
            if rng.chance(0.4) && !live.is_empty() {
                let idx = rng.usize_below(live.len());
                let victim = live.swap_remove(idx);
                a.release(victim).expect("release live");
            }
        }
        // Check pairwise disjointness per disk.
        for d in 0..3u32 {
            let spaces = a.spaces_on(UnitId(0), ustore_fabric::DiskId(d));
            for (i, (_, x)) in spaces.iter().enumerate() {
                assert!(x.offset + x.len <= 4096, "case {case}");
                for (_, y) in spaces.iter().skip(i + 1) {
                    let disjoint = x.offset + x.len <= y.offset || y.offset + y.len <= x.offset;
                    assert!(disjoint, "case {case}: overlap: {x:?} vs {y:?}");
                }
            }
        }
    }
}

/// Single-decree Paxos safety: with any interleaving of two proposers
/// over five acceptors, at most one value is chosen.
#[test]
fn paxos_never_decides_two_values() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x9A05 + case);
        let mut acceptors: Vec<Acceptor<&'static str>> = vec![Acceptor::new(); 5];
        #[derive(Clone)]
        struct P {
            ballot: Ballot,
            value: &'static str,
            order: Vec<usize>,
            step: usize,
            promises: Vec<(u32, Option<(Ballot, &'static str)>)>,
            accepts: BTreeSet<u32>,
            phase2: bool,
            chosen_value: Option<&'static str>,
        }
        let order = |rng: &mut SimRng| -> Vec<usize> {
            let n = 5 + rng.usize_below(5);
            (0..n).map(|_| rng.usize_below(5)).collect()
        };
        let order_a = order(&mut rng);
        let order_b = order(&mut rng);
        let mut ps = [
            P {
                ballot: Ballot::new(1, 0),
                value: "A",
                order: order_a,
                step: 0,
                promises: vec![],
                accepts: BTreeSet::new(),
                phase2: false,
                chosen_value: None,
            },
            P {
                ballot: Ballot::new(2, 1),
                value: "B",
                order: order_b,
                step: 0,
                promises: vec![],
                accepts: BTreeSet::new(),
                phase2: false,
                chosen_value: None,
            },
        ];
        let mut chosen: Vec<&str> = Vec::new();
        let steps = 10 + rng.usize_below(10);
        for _ in 0..steps {
            let pick = rng.chance(0.5);
            let p = &mut ps[usize::from(pick)];
            if p.step >= p.order.len() {
                continue;
            }
            let ai = p.order[p.step];
            p.step += 1;
            if !p.phase2 {
                if let PrepareReply::Promised { accepted, .. } = acceptors[ai].on_prepare(p.ballot)
                {
                    if !p.promises.iter().any(|(n, _)| *n == ai as u32) {
                        p.promises.push((ai as u32, accepted));
                    }
                    if p.promises.len() >= 3 {
                        p.phase2 = true;
                        let forced = p
                            .promises
                            .iter()
                            .filter_map(|(_, a)| *a)
                            .max_by_key(|(b, _)| *b)
                            .map(|(_, v)| v);
                        p.chosen_value = Some(forced.unwrap_or(p.value));
                    }
                }
            } else if let Some(v) = p.chosen_value {
                if let AcceptReply::Accepted { .. } = acceptors[ai].on_accept(p.ballot, v) {
                    p.accepts.insert(ai as u32);
                    if p.accepts.len() == 3 {
                        chosen.push(v);
                    }
                }
            }
        }
        if chosen.len() == 2 {
            assert_eq!(chosen[0], chosen[1], "case {case}: split decision");
        }
    }
}

/// Replaying the same command stream always yields the same store.
#[test]
fn znode_store_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x2E0DE + case);
        let n = 1 + rng.usize_below(59);
        let ops: Vec<(u8, u8, bool)> = (0..n)
            .map(|_| {
                (
                    rng.u64_below(5) as u8,
                    rng.u64_below(4) as u8,
                    rng.chance(0.5),
                )
            })
            .collect();
        fn build(ops: &[(u8, u8, bool)]) -> (ZnodeStore, Vec<String>) {
            let mut store = ZnodeStore::new();
            store
                .apply(&Command::CreateSession { id: 1 })
                .0
                .expect("session");
            let mut results = Vec::new();
            for (op, node, eph) in ops {
                let path = format!("/n{node}");
                let cmd = match op {
                    0 => Command::Create {
                        session: 1,
                        path,
                        data: vec![*node],
                        mode: if *eph {
                            ustore_consensus::CreateMode::Ephemeral
                        } else {
                            ustore_consensus::CreateMode::Persistent
                        },
                    },
                    1 => Command::Delete {
                        path,
                        version: None,
                    },
                    2 => Command::SetData {
                        path,
                        data: vec![*op],
                        version: None,
                    },
                    3 => Command::ExpireSession { id: 1 },
                    _ => Command::CreateSession { id: 1 },
                };
                results.push(format!("{:?}", store.apply(&cmd)));
            }
            (store, results)
        }
        let (sa, ra) = build(&ops);
        let (sb, rb) = build(&ops);
        assert_eq!(ra, rb, "case {case}");
        let ka: Vec<&str> = sa.children("/").collect();
        let kb: Vec<&str> = sb.children("/").collect();
        assert_eq!(ka, kb, "case {case}");
    }
}

/// Counter telemetry deltas lose nothing: applying `diff(after, before)`
/// back onto `before` reconstructs `after` exactly, for any monotone
/// counter growth.
#[test]
fn metrics_diff_merge_round_trips_counters() {
    const COMPONENTS: [&str; 3] = ["disk0", "host1", "master-0"];
    const NAMES: [&str; 3] = ["io.reads", "io.writes", "rpc.calls"];
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xD1FF + case);
        let mut before = MetricsRegistry::new();
        let n = rng.usize_below(20);
        for _ in 0..n {
            let c = COMPONENTS[rng.usize_below(3)];
            let m = NAMES[rng.usize_below(3)];
            before.counter_add(c, m, rng.u64_below(1000));
        }
        // Counters only grow; `after` extends `before`.
        let mut after = before.snapshot();
        let grow = rng.usize_below(20);
        for _ in 0..grow {
            let c = COMPONENTS[rng.usize_below(3)];
            let m = NAMES[rng.usize_below(3)];
            after.counter_add(c, m, rng.u64_below(1000));
        }
        let mut rebuilt = before.snapshot();
        rebuilt.merge(&after.diff(&before));
        let want: Vec<(String, String, u64)> = after
            .counters()
            .map(|(c, n, v)| (c.to_owned(), n.to_owned(), v))
            .collect();
        let got: Vec<(String, String, u64)> = rebuilt
            .counters()
            .map(|(c, n, v)| (c.to_owned(), n.to_owned(), v))
            .collect();
        assert_eq!(want, got, "case {case}: merge(diff(a,b), b) != a");
    }
}

/// The Prometheus exporter is a pure function of registry *content*:
/// recording the same data in any order yields byte-identical exposition
/// text, and exporting twice never differs.
#[test]
fn prometheus_export_is_byte_stable() {
    const COMPONENTS: [&str; 3] = ["disk0", "disk1", "net"];
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x9B0F + case);
        // A random batch of operations...
        let n = 1 + rng.usize_below(40);
        let ops: Vec<(u8, usize, u64)> = (0..n)
            .map(|_| {
                (
                    rng.u64_below(3) as u8,
                    rng.usize_below(3),
                    rng.u64_below(1_000_000),
                )
            })
            .collect();
        let apply = |m: &mut MetricsRegistry, (op, c, v): (u8, usize, u64)| {
            let c = COMPONENTS[c];
            match op {
                0 => m.counter_add(c, "ops.count", v),
                1 => m.gauge_set(c, "ops.gauge", v as f64),
                _ => m.observe(c, "ops.latency_ns", v),
            }
        };
        let mut fwd = MetricsRegistry::new();
        for op in &ops {
            apply(&mut fwd, *op);
        }
        // ...replayed in reverse order. Counters sum and histograms are
        // order-free; replay gauges forward so the last write wins in
        // both registries.
        let mut rev = MetricsRegistry::new();
        for op in ops.iter().rev().filter(|(op, _, _)| *op != 1) {
            apply(&mut rev, *op);
        }
        for op in ops.iter().filter(|(op, _, _)| *op == 1) {
            apply(&mut rev, *op);
        }
        let a = export::prometheus(&fwd);
        let b = export::prometheus(&rev);
        assert_eq!(a, b, "case {case}: insertion order leaked into export");
        assert_eq!(
            a,
            export::prometheus(&fwd),
            "case {case}: repeated export differs"
        );
    }
}

/// Histogram quantiles are order-consistent and bounded by min/max.
#[test]
fn histogram_quantiles_are_sane() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x415706 + case);
        let n = 1 + rng.usize_below(299);
        let mut h = Histogram::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let s = rng.u64_below(1_000_000_000);
            samples.push(s);
            h.record(s);
        }
        let min = h.min().expect("nonempty");
        let max = h.max().expect("nonempty");
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).expect("nonempty");
            assert!(
                v >= min && v <= max,
                "case {case}: q{q}: {v} outside [{min},{max}]"
            );
            assert!(v >= last, "case {case}: quantiles must be monotone");
            last = v;
        }
        let mean = h.mean().expect("nonempty");
        assert!(mean >= min as f64 && mean <= max as f64, "case {case}");
    }
}
