//! Property-based tests over the core data structures and invariants.
//!
//! - Any switch configuration partitions the fabric into non-overlapping
//!   trees (the validity claim of §III-A).
//! - Algorithm 1 never moves a disk that was not named in the command.
//! - The allocator never hands out overlapping extents.
//! - Paxos acceptors never decide two different values.
//! - The znode store is a deterministic state machine.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use ustore::{Allocator, UnitId};
use ustore_consensus::{Acceptor, AcceptReply, Ballot, Command, PrepareReply, ZnodeStore};
use ustore_fabric::{DiskId, FabricState, HostId, Topology};
use ustore_sim::Histogram;

fn arbitrary_fabric() -> impl Strategy<Value = (FabricState, u32, u32)> {
    // hosts in {2,4}, disks 4..=32, fanin 2..=5
    (prop_oneof![Just(2u32), Just(4u32)], 4u32..=32, 2usize..=5).prop_map(|(hosts, disks, fanin)| {
        let (t, cfg) = Topology::upper_switched(hosts, disks, fanin);
        (FabricState::new(t, cfg), hosts, disks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random switch settings always leave each disk attached to at most
    /// one host, and every attachment is consistent with a real path.
    #[test]
    fn any_switch_config_partitions_into_trees(
        (mut fabric, hosts, disks) in arbitrary_fabric(),
        flips in prop::collection::vec(any::<bool>(), 0..128),
    ) {
        let switches: Vec<_> = fabric.topology().switches().collect();
        for (i, flip) in flips.iter().enumerate() {
            if switches.is_empty() { break; }
            let s = switches[i % switches.len()];
            if *flip {
                let cur = fabric.switch_pos(s).expect("switch exists");
                fabric.set_switch(s, cur.flip());
            }
        }
        for d in 0..disks {
            let host = fabric.attached_host(DiskId(d));
            if let Some(h) = host {
                prop_assert!(h.0 < hosts, "attachment to a real host");
                // Consistency: the required path for that host needs no
                // switch turns under the current config.
                let path = fabric.path_switches(DiskId(d), h).expect("path exists");
                for (s, pos) in path {
                    prop_assert_eq!(fabric.switch_pos(s), Some(pos));
                }
            }
        }
    }

    /// Algorithm 1 either errors or produces turns that move exactly the
    /// requested disks (plus nothing attached elsewhere).
    #[test]
    fn switches_to_turn_never_steals_unrelated_disks(
        (fabric, hosts, disks) in arbitrary_fabric(),
        moved in 0u32..32,
        target in 0u32..4,
    ) {
        let d = DiskId(moved % disks);
        let h = HostId(target % hosts);
        let before = fabric.attachment_map();
        if let Ok(turns) = fabric.switches_to_turn(&[(d, h)]) {
            let mut after = fabric.clone();
            after.apply_turns(&turns);
            prop_assert_eq!(after.attached_host(d), Some(h));
            for (other, old_host) in &before {
                if *other != d {
                    prop_assert_eq!(
                        after.attached_host(*other),
                        Some(*old_host),
                        "unrelated disk moved"
                    );
                }
            }
        }
    }

    /// The allocator never double-books bytes on a disk.
    #[test]
    fn allocator_extents_never_overlap(
        sizes in prop::collection::vec(1u64..=1000, 1..40),
        releases in prop::collection::vec(any::<u16>(), 0..20),
    ) {
        let mut a = Allocator::new();
        for d in 0..3u32 {
            a.register_disk(UnitId(0), ustore_fabric::DiskId(d), 4096);
        }
        let mut live = Vec::new();
        let empty = BTreeMap::new();
        for (i, size) in sizes.iter().enumerate() {
            if let Ok(got) = a.allocate("svc", *size, &empty, None) {
                live.push(got.name);
            }
            if let Some(r) = releases.get(i) {
                if !live.is_empty() {
                    let idx = *r as usize % live.len();
                    let victim = live.swap_remove(idx);
                    a.release(victim).expect("release live");
                }
            }
        }
        // Check pairwise disjointness per disk.
        for d in 0..3u32 {
            let spaces = a.spaces_on(UnitId(0), ustore_fabric::DiskId(d));
            for (i, (_, x)) in spaces.iter().enumerate() {
                prop_assert!(x.offset + x.len <= 4096);
                for (_, y) in spaces.iter().skip(i + 1) {
                    let disjoint = x.offset + x.len <= y.offset || y.offset + y.len <= x.offset;
                    prop_assert!(disjoint, "overlap: {x:?} vs {y:?}");
                }
            }
        }
    }

    /// Single-decree Paxos safety: with any interleaving of two proposers
    /// over five acceptors, at most one value is chosen.
    #[test]
    fn paxos_never_decides_two_values(
        order_a in prop::collection::vec(0usize..5, 5..10),
        order_b in prop::collection::vec(0usize..5, 5..10),
        interleave in prop::collection::vec(any::<bool>(), 10..20),
    ) {
        let mut acceptors: Vec<Acceptor<&'static str>> = vec![Acceptor::new(); 5];
        #[derive(Clone)]
        struct P {
            ballot: Ballot,
            value: &'static str,
            order: Vec<usize>,
            step: usize,
            promises: Vec<(u32, Option<(Ballot, &'static str)>)>,
            accepts: BTreeSet<u32>,
            phase2: bool,
            chosen_value: Option<&'static str>,
        }
        let mut ps = [
            P { ballot: Ballot::new(1, 0), value: "A", order: order_a, step: 0,
                promises: vec![], accepts: BTreeSet::new(), phase2: false, chosen_value: None },
            P { ballot: Ballot::new(2, 1), value: "B", order: order_b, step: 0,
                promises: vec![], accepts: BTreeSet::new(), phase2: false, chosen_value: None },
        ];
        let mut chosen: Vec<&str> = Vec::new();
        for pick in interleave {
            let p = &mut ps[usize::from(pick)];
            if p.step >= p.order.len() { continue; }
            let ai = p.order[p.step];
            p.step += 1;
            if !p.phase2 {
                if let PrepareReply::Promised { accepted, .. } =
                    acceptors[ai].on_prepare(p.ballot)
                {
                    if !p.promises.iter().any(|(n, _)| *n == ai as u32) {
                        p.promises.push((ai as u32, accepted));
                    }
                    if p.promises.len() >= 3 {
                        p.phase2 = true;
                        let forced = p
                            .promises
                            .iter()
                            .filter_map(|(_, a)| *a)
                            .max_by_key(|(b, _)| *b)
                            .map(|(_, v)| v);
                        p.chosen_value = Some(forced.unwrap_or(p.value));
                    }
                }
            } else if let Some(v) = p.chosen_value {
                if let AcceptReply::Accepted { .. } = acceptors[ai].on_accept(p.ballot, v) {
                    p.accepts.insert(ai as u32);
                    if p.accepts.len() == 3 {
                        chosen.push(v);
                    }
                }
            }
        }
        if chosen.len() == 2 {
            prop_assert_eq!(chosen[0], chosen[1], "split decision");
        }
    }

    /// Replaying the same command stream always yields the same store.
    #[test]
    fn znode_store_is_deterministic(
        ops in prop::collection::vec((0u8..5, 0u8..4, any::<bool>()), 1..60),
    ) {
        fn build(ops: &[(u8, u8, bool)]) -> (ZnodeStore, Vec<String>) {
            let mut store = ZnodeStore::new();
            store.apply(&Command::CreateSession { id: 1 }).0.expect("session");
            let mut results = Vec::new();
            for (op, node, eph) in ops {
                let path = format!("/n{node}");
                let cmd = match op {
                    0 => Command::Create {
                        session: 1,
                        path,
                        data: vec![*node],
                        mode: if *eph {
                            ustore_consensus::CreateMode::Ephemeral
                        } else {
                            ustore_consensus::CreateMode::Persistent
                        },
                    },
                    1 => Command::Delete { path, version: None },
                    2 => Command::SetData { path, data: vec![*op], version: None },
                    3 => Command::ExpireSession { id: 1 },
                    _ => Command::CreateSession { id: 1 },
                };
                results.push(format!("{:?}", store.apply(&cmd)));
            }
            (store, results)
        }
        let (sa, ra) = build(&ops);
        let (sb, rb) = build(&ops);
        prop_assert_eq!(ra, rb);
        let ka: Vec<&str> = sa.children("/").collect();
        let kb: Vec<&str> = sb.children("/").collect();
        prop_assert_eq!(ka, kb);
    }

    /// Histogram quantiles are order-consistent and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_sane(samples in prop::collection::vec(0u64..1_000_000_000, 1..300)) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let min = h.min().expect("nonempty");
        let max = h.max().expect("nonempty");
        let mut last = 0;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).expect("nonempty");
            prop_assert!(v >= min && v <= max, "q{q}: {v} outside [{min},{max}]");
            prop_assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
        let mean = h.mean().expect("nonempty");
        prop_assert!(mean >= min as f64 && mean <= max as f64);
    }
}
