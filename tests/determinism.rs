//! Golden determinism: the engine overhaul (key interning, slot-reuse
//! cancellation, id-keyed scraping) must not perturb simulation outcomes
//! or telemetry byte order. Two same-seed runs of each benchmark scenario
//! must produce bit-for-bit identical telemetry exports.

use ustore_bench::degraded::run_degraded_traced;
use ustore_bench::podscale::{fnv1a, run_podscale, PodConfig};

#[test]
fn degraded_telemetry_is_bit_for_bit_deterministic() {
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(20150707);

    assert_eq!(
        a.events_processed, b.events_processed,
        "event counts differ"
    );
    assert_eq!(a.timing, b.timing, "phase timings differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "telemetry JSON (metrics + spans + timeline) differs"
    );
    assert_eq!(
        a.artifacts.prometheus, b.artifacts.prometheus,
        "prometheus export differs"
    );
    assert_eq!(
        a.artifacts.chrome_trace, b.artifacts.chrome_trace,
        "chrome trace differs"
    );
    assert_eq!(
        a.artifacts.timeseries_csv, b.artifacts.timeseries_csv,
        "time-series CSV differs"
    );
}

#[test]
fn degraded_telemetry_varies_with_seed() {
    // Sanity check for the test above: if the exports were constant, the
    // bit-for-bit comparison would be vacuous.
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(19411207);
    assert_ne!(
        fnv1a(a.artifacts.timeseries_csv.as_bytes()),
        fnv1a(b.artifacts.timeseries_csv.as_bytes()),
        "different seeds produced identical CSV exports"
    );
}

#[test]
fn podscale_digest_is_deterministic_across_same_seed_runs() {
    let cfg = PodConfig::tiny();
    let a = run_podscale(7, &cfg);
    let b = run_podscale(7, &cfg);
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.digest, b.digest, "telemetry digests differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "pod telemetry JSON differs"
    );
}
