//! Golden determinism: the engine overhaul (key interning, slot-reuse
//! cancellation, id-keyed scraping) must not perturb simulation outcomes
//! or telemetry byte order. Two same-seed runs of each benchmark scenario
//! must produce bit-for-bit identical telemetry exports.

use ustore::TracePlan;
use ustore_bench::degraded::run_degraded_traced;
use ustore_bench::fuzz::{run_fuzz, FuzzOptions};
use ustore_bench::podscale::{
    fnv1a, run_podscale, run_podscale_profiled, run_podscale_sharded,
    run_podscale_sharded_profiled, run_podscale_sharded_traced, run_podscale_traced, PodConfig,
};
use ustore_sim::faultgen::{Bathtub, FaultModelConfig, FaultSchedule, FleetShape, Weibull};
use ustore_sim::{canonical_merge, Profiler, RequestTracer, Routed, SimRng, SimTime};

#[test]
fn degraded_telemetry_is_bit_for_bit_deterministic() {
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(20150707);

    assert_eq!(
        a.events_processed, b.events_processed,
        "event counts differ"
    );
    assert_eq!(a.timing, b.timing, "phase timings differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "telemetry JSON (metrics + spans + timeline) differs"
    );
    assert_eq!(
        a.artifacts.prometheus, b.artifacts.prometheus,
        "prometheus export differs"
    );
    assert_eq!(
        a.artifacts.chrome_trace, b.artifacts.chrome_trace,
        "chrome trace differs"
    );
    assert_eq!(
        a.artifacts.timeseries_csv, b.artifacts.timeseries_csv,
        "time-series CSV differs"
    );
}

#[test]
fn degraded_telemetry_varies_with_seed() {
    // Sanity check for the test above: if the exports were constant, the
    // bit-for-bit comparison would be vacuous.
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(19411207);
    assert_ne!(
        fnv1a(a.artifacts.timeseries_csv.as_bytes()),
        fnv1a(b.artifacts.timeseries_csv.as_bytes()),
        "different seeds produced identical CSV exports"
    );
}

#[test]
fn podscale_digest_is_deterministic_across_same_seed_runs() {
    let cfg = PodConfig::tiny();
    let a = run_podscale(7, &cfg);
    let b = run_podscale(7, &cfg);
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.digest, b.digest, "telemetry digests differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "pod telemetry JSON differs"
    );
}

/// Golden test for the sharded parallel engine: the same pod, same seed,
/// executed on 1, 2 and 4 threads must produce byte-identical telemetry
/// digests. The decomposition (world count, RNG streams, registries) is
/// fixed by the scenario; only the executor thread count varies, so any
/// divergence means cross-shard message ordering leaked thread timing
/// into simulation state.
#[test]
fn podscale_sharded_digest_is_identical_for_shards_1_2_4() {
    let cfg = PodConfig::tiny();
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|s| (s, run_podscale_sharded(7, &cfg, s)))
        .collect();
    let (_, base) = &runs[0];
    assert!(base.writes_ok > 0 && base.reads_ok > 0, "workload served");
    assert_eq!(base.io_errors, 0, "healthy pod serves all IO");
    for (s, run) in &runs[1..] {
        assert_eq!(
            run.digest, base.digest,
            "telemetry digest diverged at --shards {s}"
        );
        assert_eq!(
            run.events, base.events,
            "event count diverged at --shards {s}"
        );
        assert_eq!(run.writes_ok, base.writes_ok);
        assert_eq!(run.reads_ok, base.reads_ok);
        let (a, b) = (
            base.sharding.as_ref().expect("shard stats"),
            run.sharding.as_ref().expect("shard stats"),
        );
        assert_eq!(
            a.epochs, b.epochs,
            "epoch window count diverged at --shards {s}"
        );
        assert_eq!(
            a.sync_rounds, b.sync_rounds,
            "sync round count diverged at --shards {s} — the adaptive \
             scheduler let thread timing into a scheduling decision"
        );
        assert_eq!(
            a.cross_messages, b.cross_messages,
            "cross-world traffic diverged at --shards {s}"
        );
    }
}

/// Golden test for the partitioned control plane on the sharded engine:
/// with one metadata partition per unit-group world (replica groups
/// co-located with their units, so the lookahead matrix gains
/// same-partition edges) and client location leases on, the telemetry
/// digest must still be bit-identical at every executor thread count.
/// This is the determinism gate for both new mechanisms at once: the
/// partition routing and the widened lookahead can change *scheduling*,
/// never *outcomes*.
#[test]
fn partitioned_leased_sharded_digest_is_identical_for_shards_1_2_4() {
    let cfg = PodConfig::tiny().partitioned();
    assert!(cfg.partitions > 1, "partitioned shape under test");
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|s| (s, run_podscale_sharded(7, &cfg, s)))
        .collect();
    let (_, base) = &runs[0];
    assert!(base.writes_ok > 0 && base.reads_ok > 0, "workload served");
    assert_eq!(base.io_errors, 0, "healthy pod serves all IO");
    for (s, run) in &runs[1..] {
        assert_eq!(
            run.digest, base.digest,
            "partitioned telemetry digest diverged at --shards {s}"
        );
        assert_eq!(run.events, base.events);
        assert_eq!(run.writes_ok, base.writes_ok);
        assert_eq!(run.reads_ok, base.reads_ok);
        assert_eq!(
            run.partition_logs, base.partition_logs,
            "per-partition log lengths diverged at --shards {s}"
        );
        let (a, b) = (
            base.sharding.as_ref().expect("shard stats"),
            run.sharding.as_ref().expect("shard stats"),
        );
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.sync_rounds, b.sync_rounds);
        assert_eq!(a.cross_messages, b.cross_messages);
    }
    // The monolithic pod at the same seed is a different scenario (extra
    // replica groups, refresh lookups): its digest must differ, or the
    // partitioned comparison above is vacuous.
    let mono = run_podscale_sharded(7, &PodConfig::tiny(), 2);
    assert_ne!(
        mono.digest, base.digest,
        "partitioned and monolithic scenarios produced identical telemetry"
    );
}

/// Equivalence of the partitioned Master with the monolithic one: the
/// partition map changes *where metadata lives*, never *what it says*.
/// The same allocation workload against partitions=1 and partitions=4
/// must yield identical spaces, identical lookup answers, and — after the
/// active master is killed and the standby rebuilds from the replicated
/// logs — identical recovered state.
#[test]
fn partitioned_master_agrees_with_monolithic_on_allocate_lookup_recover() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;
    use ustore::{MasterConfig, SpaceInfo, SystemConfig, UStoreSystem};

    fn run_scenario(partitions: u32) -> (Vec<SpaceInfo>, Vec<SpaceInfo>) {
        let sim = ustore_sim::Sim::new(0xE0_0415);
        let s = UStoreSystem::build(
            sim,
            SystemConfig {
                units: 4,
                master: MasterConfig {
                    partitions,
                    ..MasterConfig::default()
                },
                ..SystemConfig::default()
            },
        );
        s.settle();
        let client = s.client("equiv");
        let run_for = |secs: u64| s.sim.run_until(s.sim.now() + Duration::from_secs(secs));
        // A serialized request sequence: each allocate observes the
        // state left by the previous one, so the balance rule's answer
        // is a pure function of the sequence — the property under test.
        // (Concurrent allocates would commit in a transport-dependent
        // interleaving, which partitioning legitimately changes.)
        let allocated: Rc<RefCell<Vec<Option<SpaceInfo>>>> = Rc::new(RefCell::new(vec![None; 8]));
        for i in 0..8usize {
            let out = allocated.clone();
            client.allocate(&s.sim, format!("svc-{i}"), 1 << 30, move |_, r| {
                out.borrow_mut()[i] = Some(r.expect("allocate"));
            });
            run_for(3);
        }
        let allocated: Vec<SpaceInfo> = allocated
            .borrow()
            .iter()
            .map(|o| o.clone().expect("allocation served"))
            .collect();
        // Fail the active master over; the standby rebuilds SysConf from
        // the replicated logs (all partitions) before serving lookups.
        let active = s
            .masters
            .iter()
            .position(|m| m.is_active())
            .expect("active master");
        s.kill_master(active);
        run_for(40);
        // One lookup at a time: the client's master-selection hint is
        // shared, and a concurrent batch would advance it in lockstep
        // while the first post-failover timeouts are still resolving.
        let recovered: Rc<RefCell<Vec<Option<SpaceInfo>>>> = Rc::new(RefCell::new(vec![None; 8]));
        for (i, info) in allocated.iter().enumerate() {
            let out = recovered.clone();
            client.lookup(&s.sim, info.name, move |_, r| {
                out.borrow_mut()[i] = Some(r.expect("lookup after failover"));
            });
            run_for(3);
        }
        let recovered: Vec<SpaceInfo> = recovered
            .borrow()
            .iter()
            .map(|o| o.clone().expect("lookup served"))
            .collect();
        s.sim.teardown();
        (allocated, recovered)
    }

    let (mono_alloc, mono_rec) = run_scenario(1);
    let (part_alloc, part_rec) = run_scenario(4);
    assert_eq!(
        mono_alloc, part_alloc,
        "allocation answers differ between monolithic and partitioned Master"
    );
    assert_eq!(
        mono_rec, part_rec,
        "post-failover lookup answers differ between monolithic and partitioned Master"
    );
    for (a, r) in mono_alloc.iter().zip(&mono_rec) {
        assert_eq!(a.name, r.name);
        assert_eq!(a.size, r.size, "recovered extent size drifted");
    }
}

/// Property test for the adaptive scheduler's safety precondition: the
/// per-pair lookahead matrix handed to the coordinator must never exceed
/// the true minimum cross-world delivery latency for any reachable pair.
/// If an entry overstated the real minimum, a message could arrive inside
/// an epoch bound the scheduler already committed to — unsound.
///
/// The pod builds its matrix from the network's `base_latency` over the
/// control-plane star. Here we drive the same routing layer with
/// randomized payload sizes and destinations (deterministic LCG) and check
/// every observed routed envelope clears its pair's matrix entry.
#[test]
fn lookahead_matrix_never_undercuts_observed_path_latency() {
    use std::sync::Arc;
    use std::time::Duration;
    use ustore_net::{Addr, NetConfig, Network};
    use ustore_sim::{FastMap, LookaheadMatrix, Sim};

    const WORLDS: usize = 5;
    let cfg = NetConfig::default();
    let matrix = Arc::new(LookaheadMatrix::from_reachability(
        WORLDS,
        cfg.base_latency,
        // The pod's control-plane star: world 0 talks to everyone,
        // leaf worlds only talk to world 0.
        |src, dst| src == 0 || dst == 0,
    ));
    assert_eq!(
        matrix.min_finite(),
        Some(cfg.base_latency),
        "star matrix floor is the network base latency"
    );
    assert!(
        !matrix.reachable(1, 2),
        "leaf worlds do not talk to each other"
    );

    let mut placement = FastMap::default();
    let addrs: Vec<Addr> = (0..WORLDS)
        .map(|w| {
            let a = Addr::new(format!("w{w}"));
            placement.insert(a.clone(), w);
            a
        })
        .collect();
    let placement = Arc::new(placement);

    let mut state = 0x5EED_1A7E_9C3Fu64;
    let mut rand = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };

    let mut routed = 0u64;
    let mut out = Vec::new();
    for src in 0..WORLDS {
        let sim = Sim::new(0xC0FF_EE00 + src as u64);
        let net = Network::new(cfg.clone());
        net.enable_shard_routing_with_lookahead(src, placement.clone(), matrix.clone());
        net.register(&addrs[src]);
        // Advance virtual time so latencies are measured off a nonzero now.
        sim.schedule_in(Duration::from_millis(rand(50)), |_| {});
        sim.run();
        for _ in 0..64 {
            let dst = if src == 0 {
                1 + rand(WORLDS as u64 - 1) as usize
            } else {
                0 // the only world a leaf can reach
            };
            let bytes = rand(1 << 20);
            net.send(&sim, &addrs[src], &addrs[dst], bytes, Arc::new(bytes));
        }
        net.drain_outbox_into(&mut out);
        for r in out.drain(..) {
            routed += 1;
            assert!(
                matrix.reachable(r.src_world, r.dst_world),
                "routed envelope {} -> {} over a pair the matrix excludes",
                r.src_world,
                r.dst_world
            );
            let latency = r.deliver_at.duration_since(sim.now());
            let bound = Duration::from_nanos(matrix.get_ns(r.src_world, r.dst_world));
            assert!(
                latency >= bound,
                "observed delivery latency {:?} undercuts the lookahead \
                 matrix entry {:?} for pair {} -> {}",
                latency,
                bound,
                r.src_world,
                r.dst_world
            );
        }
    }
    assert_eq!(routed, WORLDS as u64 * 64, "every randomized send routed");
}

/// Golden test for the wall-clock profiler: it observes the engine from a
/// monotonic-clock side channel and must never feed back into simulation
/// state. Enabling it leaves every shard count's telemetry digest
/// bit-identical to the unprofiled run.
#[test]
fn profiling_leaves_sharded_digests_bit_identical() {
    if !Profiler::compiled_in() {
        // Built with --no-default-features: the profiler is compiled out
        // and the comparison would be vacuous.
        return;
    }
    let cfg = PodConfig::tiny();
    for shards in [1usize, 2, 4] {
        let plain = run_podscale_sharded(7, &cfg, shards);
        let profiled = run_podscale_sharded_profiled(7, &cfg, shards);
        assert_eq!(
            profiled.digest, plain.digest,
            "profiling changed the telemetry digest at --shards {shards}"
        );
        assert_eq!(profiled.events, plain.events);
        assert!(
            profiled.prof.is_some() && profiled.traffic.is_some(),
            "profiled run captured its snapshots"
        );
        assert!(plain.prof.is_none() && plain.traffic.is_none());
    }
    let plain = run_podscale(7, &cfg);
    let profiled = run_podscale_profiled(7, &cfg);
    assert_eq!(
        profiled.digest, plain.digest,
        "profiling changed the classic engine's telemetry digest"
    );
}

/// Golden test for the request-lifecycle tracer: like the profiler it is
/// a pure observability side channel — no RNG draws, no scheduled events,
/// no digested telemetry. Enabling it leaves every shard count's
/// telemetry digest bit-identical to the untraced run, and the classic
/// engine's too.
#[test]
fn tracing_leaves_sharded_digests_bit_identical() {
    if !RequestTracer::compiled_in() {
        // Built with --no-default-features: the tracer is compiled out
        // and the comparison would be vacuous.
        return;
    }
    let cfg = PodConfig::tiny();
    for shards in [1usize, 2, 4] {
        let plain = run_podscale_sharded(7, &cfg, shards);
        let traced = run_podscale_sharded_traced(7, &cfg, shards, TracePlan::default());
        assert_eq!(
            traced.digest, plain.digest,
            "tracing changed the telemetry digest at --shards {shards}"
        );
        assert_eq!(traced.events, plain.events);
        let snap = traced.slo.as_ref().expect("traced run captured snapshot");
        assert!(snap.seen > 0, "tracer saw the pod's requests");
        assert!(plain.slo.is_none());
    }
    let plain = run_podscale(7, &cfg);
    let traced = run_podscale_traced(7, &cfg, TracePlan::default());
    assert_eq!(
        traced.digest, plain.digest,
        "tracing changed the classic engine's telemetry digest"
    );
    assert_eq!(traced.events, plain.events);
}

/// The profiler's phase accounting must tile the run: each world's phase
/// sums approximate the measured wall time of the run window. The bounds
/// are generous — CI machines are noisy and the tiny pod runs for
/// milliseconds — but they reject both gross undercounting (a phase not
/// instrumented) and double counting (a phase attributed twice).
#[test]
fn profiled_phase_sums_approximate_measured_wall_time() {
    if !Profiler::compiled_in() {
        return;
    }
    let run = run_podscale_sharded_profiled(7, &PodConfig::tiny(), 2);
    let prof = run.prof.expect("profiled run has a snapshot");
    let wall_ns = run.run_wall_seconds * 1e9;
    assert!(wall_ns > 0.0);
    for w in &prof.worlds {
        let ratio = w.total_ns() as f64 / wall_ns;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "world {}: phase sum is {:.0}% of wall time (sum {} ns, wall {:.0} ns)",
            w.world,
            ratio * 100.0,
            w.total_ns(),
            wall_ns
        );
    }
}

/// Property test for the fault model's lifetime samplers: at a fixed
/// seed, the empirical CDF of inverse-transform draws must track the
/// analytic CDF. The tolerance is a Kolmogorov–Smirnov-style bound with
/// slack (the seed is fixed, so the test is deterministic; the bound
/// rejects a broken transform, not an unlucky sample).
#[test]
fn weibull_and_bathtub_samples_match_the_analytic_cdf() {
    const N: usize = 4000;
    const TOL: f64 = 0.03; // ~1.6/sqrt(N) with headroom

    fn max_cdf_deviation(samples: &mut [f64], cdf: impl Fn(f64) -> f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples.len() as f64;
        samples
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let empirical = (i as f64 + 0.5) / n;
                (cdf(t) - empirical).abs()
            })
            .fold(0.0, f64::max)
    }

    let infant = Weibull {
        shape: 0.7,
        scale: 40_000.0,
    };
    let wearout = Weibull {
        shape: 3.0,
        scale: 60_000.0,
    };
    let mut rng = SimRng::seed_from(0xCDF_CDF);
    let mut draws: Vec<f64> = (0..N).map(|_| infant.sample(&mut rng)).collect();
    let d = max_cdf_deviation(&mut draws, |t| infant.cdf(t));
    assert!(d < TOL, "infant Weibull deviates from analytic CDF: {d:.4}");

    let mut draws: Vec<f64> = (0..N).map(|_| wearout.sample(&mut rng)).collect();
    let d = max_cdf_deviation(&mut draws, |t| wearout.cdf(t));
    assert!(
        d < TOL,
        "wear-out Weibull deviates from analytic CDF: {d:.4}"
    );

    let tub = Bathtub {
        infant,
        wearout,
        infant_weight: 0.15,
    };
    let mut draws: Vec<f64> = (0..N).map(|_| tub.sample(&mut rng)).collect();
    let d = max_cdf_deviation(&mut draws, |t| tub.cdf(t));
    assert!(
        d < TOL,
        "bathtub mixture deviates from analytic CDF: {d:.4}"
    );
}

/// Golden test for the fault generator's shard invariance: schedules are
/// keyed per `(world, unit)` by the fleet's `world_groups` decomposition,
/// so the executor thread count must never reach the stream. The same
/// seed at `--shards` 1, 2 and 4 must produce the identical schedule,
/// pinned to a golden digest so silent generator drift is also caught.
#[test]
fn fault_schedules_are_identical_across_shard_counts() {
    let shape = FleetShape {
        units: 2,
        hosts_per_unit: 4,
        disks_per_unit: 8,
        fanin: 4,
        world_groups: 2,
    };
    let cfg = FaultModelConfig::reference();
    let runs: Vec<FaultSchedule> = [1usize, 2, 4]
        .into_iter()
        .map(|s| FaultSchedule::generate_for(0x5EED_FA07, &shape, &cfg, s))
        .collect();
    assert!(!runs[0].events.is_empty(), "reference model yields faults");
    assert!(
        runs[0].events.windows(2).all(|w| w[0].at <= w[1].at),
        "schedule sorted by time"
    );
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            r.digest(),
            runs[0].digest(),
            "schedule diverged at shard count index {i}"
        );
        assert_eq!(r.events, runs[0].events);
        assert_eq!(r.counts(), runs[0].counts());
    }
    assert_eq!(
        runs[0].digest(),
        GOLDEN_SCHEDULE_DIGEST,
        "fault generator drifted from the golden schedule \
         (update GOLDEN_SCHEDULE_DIGEST only for a deliberate model change)"
    );
}

/// Golden digest for `FaultSchedule::generate_for(0x5EED_FA07, ..)` over
/// the 2-unit reference fleet above.
const GOLDEN_SCHEDULE_DIGEST: u64 = 0x2364_B17A_D8FD_33C8;

/// Golden replay test for the fuzzer: a short campaign with a synthetic
/// failure must catch the failure, shrink it, and a second run of the
/// identical options must reproduce the telemetry digest and the
/// minimized schedule byte-for-byte.
#[test]
fn fuzz_failing_campaign_replays_bit_identically() {
    let opts = FuzzOptions {
        seed: 0xD1_6E57,
        quick: true,
        shards: 2,
        campaigns: 1,
        synthetic_fail: true,
        replay: None,
    };
    let a = run_fuzz(&opts);
    let b = run_fuzz(&opts);

    // Both runs caught the synthetic failure and the in-run replay gate
    // (re-execution of the failing seed) held.
    for run in [&a, &b] {
        assert!(run.failing.is_some(), "synthetic failure caught");
        assert!(run.replay.matches, "in-run replay gate holds");
    }

    // Cross-run: telemetry digests, violations and the minimized
    // schedule are byte-identical.
    assert_eq!(a.campaigns.len(), b.campaigns.len());
    for (ca, cb) in a.campaigns.iter().zip(&b.campaigns) {
        assert_eq!(ca.digest, cb.digest, "campaign telemetry digest differs");
        assert_eq!(ca.schedule_digest, cb.schedule_digest);
        assert_eq!(ca.violations, cb.violations);
        assert_eq!(ca.events_processed, cb.events_processed);
    }
    let (fa, fb) = (a.failing.as_ref().unwrap(), b.failing.as_ref().unwrap());
    assert_eq!(fa.seed, fb.seed);
    assert_eq!(fa.minimized.digest(), fb.minimized.digest());
    assert_eq!(
        fa.minimized.to_json().to_string(),
        fb.minimized.to_json().to_string(),
        "minimized schedule JSON differs between runs"
    );
    assert_eq!(
        a.to_json().to_string(),
        b.to_json().to_string(),
        "full fuzz report differs between runs"
    );
}

/// Property test for the epoch barrier's merge: the canonical order of
/// cross-shard messages depends only on `(deliver_at, src_world, seq)`,
/// never on the order worker threads happened to finish and hand in
/// their outboxes.
#[test]
fn epoch_merge_order_is_independent_of_thread_finish_order() {
    // A deterministic batch of routed messages from 4 worlds, with
    // deliberate deliver-time collisions across worlds.
    let batch: Vec<Routed<u32>> = (0..4)
        .flat_map(|world| {
            (0..25u64).map(move |seq| Routed {
                deliver_at: SimTime::from_nanos(
                    1_000 + (seq * 7919 + world as u64 * 104_729) % 13 * 100,
                ),
                src_world: world,
                dst_world: (world + 1) % 4,
                seq,
                msg: (world * 100) as u32 + seq as u32,
            })
        })
        .collect();
    let canon: Vec<_> = canonical_merge(batch.clone())
        .into_iter()
        .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
        .collect();
    // Simulate every way the per-shard outboxes could arrive: world-major
    // permutations, interleaved round-robin, reversed, and a pseudo-random
    // shuffle — the merged order must always be the canonical one.
    let mut arrivals: Vec<Vec<Routed<u32>>> = Vec::new();
    for rotation in 0..4usize {
        let mut v = Vec::new();
        for w in 0..4usize {
            let w = (w + rotation) % 4;
            v.extend(batch.iter().filter(|r| r.src_world == w).cloned());
        }
        arrivals.push(v);
    }
    arrivals.push(batch.iter().rev().cloned().collect());
    let mut shuffled = batch.clone();
    // Deterministic LCG shuffle — no RNG dependency in tests.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in (1..shuffled.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    arrivals.push(shuffled);
    for (i, arrival) in arrivals.into_iter().enumerate() {
        let merged: Vec<_> = canonical_merge(arrival)
            .into_iter()
            .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
            .collect();
        assert_eq!(merged, canon, "arrival order {i} changed the merge");
    }
}
