//! Golden determinism: the engine overhaul (key interning, slot-reuse
//! cancellation, id-keyed scraping) must not perturb simulation outcomes
//! or telemetry byte order. Two same-seed runs of each benchmark scenario
//! must produce bit-for-bit identical telemetry exports.

use ustore::TracePlan;
use ustore_bench::degraded::run_degraded_traced;
use ustore_bench::podscale::{
    fnv1a, run_podscale, run_podscale_profiled, run_podscale_sharded,
    run_podscale_sharded_profiled, run_podscale_sharded_traced, run_podscale_traced, PodConfig,
};
use ustore_sim::{canonical_merge, Profiler, RequestTracer, Routed, SimTime};

#[test]
fn degraded_telemetry_is_bit_for_bit_deterministic() {
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(20150707);

    assert_eq!(
        a.events_processed, b.events_processed,
        "event counts differ"
    );
    assert_eq!(a.timing, b.timing, "phase timings differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "telemetry JSON (metrics + spans + timeline) differs"
    );
    assert_eq!(
        a.artifacts.prometheus, b.artifacts.prometheus,
        "prometheus export differs"
    );
    assert_eq!(
        a.artifacts.chrome_trace, b.artifacts.chrome_trace,
        "chrome trace differs"
    );
    assert_eq!(
        a.artifacts.timeseries_csv, b.artifacts.timeseries_csv,
        "time-series CSV differs"
    );
}

#[test]
fn degraded_telemetry_varies_with_seed() {
    // Sanity check for the test above: if the exports were constant, the
    // bit-for-bit comparison would be vacuous.
    let a = run_degraded_traced(20150707);
    let b = run_degraded_traced(19411207);
    assert_ne!(
        fnv1a(a.artifacts.timeseries_csv.as_bytes()),
        fnv1a(b.artifacts.timeseries_csv.as_bytes()),
        "different seeds produced identical CSV exports"
    );
}

#[test]
fn podscale_digest_is_deterministic_across_same_seed_runs() {
    let cfg = PodConfig::tiny();
    let a = run_podscale(7, &cfg);
    let b = run_podscale(7, &cfg);
    assert_eq!(a.events, b.events, "event counts differ");
    assert_eq!(a.digest, b.digest, "telemetry digests differ");
    assert_eq!(
        a.telemetry.to_string(),
        b.telemetry.to_string(),
        "pod telemetry JSON differs"
    );
}

/// Golden test for the sharded parallel engine: the same pod, same seed,
/// executed on 1, 2 and 4 threads must produce byte-identical telemetry
/// digests. The decomposition (world count, RNG streams, registries) is
/// fixed by the scenario; only the executor thread count varies, so any
/// divergence means cross-shard message ordering leaked thread timing
/// into simulation state.
#[test]
fn podscale_sharded_digest_is_identical_for_shards_1_2_4() {
    let cfg = PodConfig::tiny();
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|s| (s, run_podscale_sharded(7, &cfg, s)))
        .collect();
    let (_, base) = &runs[0];
    assert!(base.writes_ok > 0 && base.reads_ok > 0, "workload served");
    assert_eq!(base.io_errors, 0, "healthy pod serves all IO");
    for (s, run) in &runs[1..] {
        assert_eq!(
            run.digest, base.digest,
            "telemetry digest diverged at --shards {s}"
        );
        assert_eq!(
            run.events, base.events,
            "event count diverged at --shards {s}"
        );
        assert_eq!(run.writes_ok, base.writes_ok);
        assert_eq!(run.reads_ok, base.reads_ok);
        let (a, b) = (
            base.sharding.as_ref().expect("shard stats"),
            run.sharding.as_ref().expect("shard stats"),
        );
        assert_eq!(a.epochs, b.epochs, "epoch count diverged at --shards {s}");
        assert_eq!(
            a.cross_messages, b.cross_messages,
            "cross-world traffic diverged at --shards {s}"
        );
    }
}

/// Golden test for the wall-clock profiler: it observes the engine from a
/// monotonic-clock side channel and must never feed back into simulation
/// state. Enabling it leaves every shard count's telemetry digest
/// bit-identical to the unprofiled run.
#[test]
fn profiling_leaves_sharded_digests_bit_identical() {
    if !Profiler::compiled_in() {
        // Built with --no-default-features: the profiler is compiled out
        // and the comparison would be vacuous.
        return;
    }
    let cfg = PodConfig::tiny();
    for shards in [1usize, 2, 4] {
        let plain = run_podscale_sharded(7, &cfg, shards);
        let profiled = run_podscale_sharded_profiled(7, &cfg, shards);
        assert_eq!(
            profiled.digest, plain.digest,
            "profiling changed the telemetry digest at --shards {shards}"
        );
        assert_eq!(profiled.events, plain.events);
        assert!(
            profiled.prof.is_some() && profiled.traffic.is_some(),
            "profiled run captured its snapshots"
        );
        assert!(plain.prof.is_none() && plain.traffic.is_none());
    }
    let plain = run_podscale(7, &cfg);
    let profiled = run_podscale_profiled(7, &cfg);
    assert_eq!(
        profiled.digest, plain.digest,
        "profiling changed the classic engine's telemetry digest"
    );
}

/// Golden test for the request-lifecycle tracer: like the profiler it is
/// a pure observability side channel — no RNG draws, no scheduled events,
/// no digested telemetry. Enabling it leaves every shard count's
/// telemetry digest bit-identical to the untraced run, and the classic
/// engine's too.
#[test]
fn tracing_leaves_sharded_digests_bit_identical() {
    if !RequestTracer::compiled_in() {
        // Built with --no-default-features: the tracer is compiled out
        // and the comparison would be vacuous.
        return;
    }
    let cfg = PodConfig::tiny();
    for shards in [1usize, 2, 4] {
        let plain = run_podscale_sharded(7, &cfg, shards);
        let traced = run_podscale_sharded_traced(7, &cfg, shards, TracePlan::default());
        assert_eq!(
            traced.digest, plain.digest,
            "tracing changed the telemetry digest at --shards {shards}"
        );
        assert_eq!(traced.events, plain.events);
        let snap = traced.slo.as_ref().expect("traced run captured snapshot");
        assert!(snap.seen > 0, "tracer saw the pod's requests");
        assert!(plain.slo.is_none());
    }
    let plain = run_podscale(7, &cfg);
    let traced = run_podscale_traced(7, &cfg, TracePlan::default());
    assert_eq!(
        traced.digest, plain.digest,
        "tracing changed the classic engine's telemetry digest"
    );
    assert_eq!(traced.events, plain.events);
}

/// The profiler's phase accounting must tile the run: each world's phase
/// sums approximate the measured wall time of the run window. The bounds
/// are generous — CI machines are noisy and the tiny pod runs for
/// milliseconds — but they reject both gross undercounting (a phase not
/// instrumented) and double counting (a phase attributed twice).
#[test]
fn profiled_phase_sums_approximate_measured_wall_time() {
    if !Profiler::compiled_in() {
        return;
    }
    let run = run_podscale_sharded_profiled(7, &PodConfig::tiny(), 2);
    let prof = run.prof.expect("profiled run has a snapshot");
    let wall_ns = run.run_wall_seconds * 1e9;
    assert!(wall_ns > 0.0);
    for w in &prof.worlds {
        let ratio = w.total_ns() as f64 / wall_ns;
        assert!(
            (0.5..=1.5).contains(&ratio),
            "world {}: phase sum is {:.0}% of wall time (sum {} ns, wall {:.0} ns)",
            w.world,
            ratio * 100.0,
            w.total_ns(),
            wall_ns
        );
    }
}

/// Property test for the epoch barrier's merge: the canonical order of
/// cross-shard messages depends only on `(deliver_at, src_world, seq)`,
/// never on the order worker threads happened to finish and hand in
/// their outboxes.
#[test]
fn epoch_merge_order_is_independent_of_thread_finish_order() {
    // A deterministic batch of routed messages from 4 worlds, with
    // deliberate deliver-time collisions across worlds.
    let batch: Vec<Routed<u32>> = (0..4)
        .flat_map(|world| {
            (0..25u64).map(move |seq| Routed {
                deliver_at: SimTime::from_nanos(
                    1_000 + (seq * 7919 + world as u64 * 104_729) % 13 * 100,
                ),
                src_world: world,
                dst_world: (world + 1) % 4,
                seq,
                msg: (world * 100) as u32 + seq as u32,
            })
        })
        .collect();
    let canon: Vec<_> = canonical_merge(batch.clone())
        .into_iter()
        .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
        .collect();
    // Simulate every way the per-shard outboxes could arrive: world-major
    // permutations, interleaved round-robin, reversed, and a pseudo-random
    // shuffle — the merged order must always be the canonical one.
    let mut arrivals: Vec<Vec<Routed<u32>>> = Vec::new();
    for rotation in 0..4usize {
        let mut v = Vec::new();
        for w in 0..4usize {
            let w = (w + rotation) % 4;
            v.extend(batch.iter().filter(|r| r.src_world == w).cloned());
        }
        arrivals.push(v);
    }
    arrivals.push(batch.iter().rev().cloned().collect());
    let mut shuffled = batch.clone();
    // Deterministic LCG shuffle — no RNG dependency in tests.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    for i in (1..shuffled.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    arrivals.push(shuffled);
    for (i, arrival) in arrivals.into_iter().enumerate() {
        let merged: Vec<_> = canonical_merge(arrival)
            .into_iter()
            .map(|r| (r.deliver_at, r.src_world, r.seq, r.msg))
            .collect();
        assert_eq!(merged, canon, "arrival order {i} changed the merge");
    }
}
